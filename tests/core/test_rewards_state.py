"""Reward formulas (Eqns 14, 15) and exterior-state encoding."""

import numpy as np
import pytest

from repro.core import ExteriorStateEncoder, RewardConfig, exterior_reward, inner_reward
from repro.economics.hardware import GHZ


class TestExteriorReward:
    def test_eqn14(self):
        cfg = RewardConfig(accuracy_weight=2000.0, time_weight=1.0, time_scale=25.0)
        got = exterior_reward(cfg, accuracy=0.85, previous_accuracy=0.80, round_time=50.0)
        assert got == pytest.approx(2000 * 0.05 - 50.0 / 25.0)

    def test_accuracy_drop_penalized(self):
        cfg = RewardConfig(time_scale=1.0)
        assert exterior_reward(cfg, 0.5, 0.6, 0.0) < 0

    def test_time_scale_defaults_to_identity(self):
        cfg = RewardConfig()
        assert cfg.resolved_time_scale() == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RewardConfig(accuracy_weight=0.0)
        with pytest.raises(ValueError):
            RewardConfig(time_scale=-1.0)


class TestInnerReward:
    def test_eqn15(self):
        cfg = RewardConfig(time_scale=1.0)
        # idle = (30-10) + (30-20) + 0 = 30
        assert inner_reward(cfg, [10.0, 20.0, 30.0]) == pytest.approx(-30.0)

    def test_equal_times_zero(self):
        cfg = RewardConfig(time_scale=1.0)
        assert inner_reward(cfg, [15.0, 15.0, 15.0]) == 0.0

    def test_decliners_count_as_fully_idle(self):
        cfg = RewardConfig(time_scale=1.0)
        # One decliner (T=0) idles the whole makespan.
        with_decliner = inner_reward(cfg, [0.0, 20.0, 20.0])
        without = inner_reward(cfg, [20.0, 20.0])
        assert with_decliner == pytest.approx(-20.0)
        assert without == 0.0

    def test_normalized_by_time_scale(self):
        cfg = RewardConfig(time_scale=10.0)
        assert inner_reward(cfg, [0.0, 20.0]) == pytest.approx(-2.0)

    def test_empty(self):
        assert inner_reward(RewardConfig(), []) == 0.0


class TestExteriorStateEncoder:
    def make(self, n=3, history=2, max_rounds=100):
        return ExteriorStateEncoder(
            n_nodes=n,
            history=history,
            budget_scale=50.0,
            price_scale=1e-9,
            time_scale=25.0,
            max_rounds=max_rounds,
        )

    def test_dim_formula(self):
        enc = self.make(n=3, history=2)
        assert enc.dim == 3 * 3 * 2 + 2
        assert enc.encode(50.0, 0).shape == (enc.dim,)

    def test_initial_state_zero_history(self):
        enc = self.make()
        state = enc.encode(50.0, 0)
        np.testing.assert_allclose(state[:-2], 0.0)
        assert state[-2] == pytest.approx(1.0)  # full budget
        assert state[-1] == pytest.approx(0.0)  # round 0

    def test_rolling_window(self):
        enc = self.make(n=2, history=2)
        enc.record_round(np.array([1e9, 2e9]), np.array([1e-9, 2e-9]), np.array([25.0, 50.0]))
        state = enc.encode(25.0, 1)
        # Oldest row (zeros) first, newest last.
        row_len = 3 * 2
        np.testing.assert_allclose(state[:row_len], 0.0)
        np.testing.assert_allclose(state[row_len : 2 * row_len], [1, 2, 1, 2, 1, 2])

    def test_window_evicts_oldest(self):
        enc = self.make(n=1, history=2)
        for k in range(1, 4):
            enc.record_round(np.array([k * GHZ]), np.array([k * 1e-9]), np.array([k * 25.0]))
        state = enc.encode(10.0, 3)
        np.testing.assert_allclose(state[:6], [2, 2, 2, 3, 3, 3])

    def test_last_round_roundtrip(self):
        enc = self.make(n=2, history=3)
        zetas = np.array([1.5e9, 1.1e9])
        prices = np.array([3e-9, 2e-9])
        times = np.array([30.0, 28.0])
        enc.record_round(zetas, prices, times)
        z, p, t = enc.last_round()
        np.testing.assert_allclose(z, zetas)
        np.testing.assert_allclose(p, prices)
        np.testing.assert_allclose(t, times)

    def test_reset_clears(self):
        enc = self.make(n=1, history=1)
        enc.record_round(np.array([1e9]), np.array([1e-9]), np.array([25.0]))
        enc.reset()
        np.testing.assert_allclose(enc.encode(50.0, 0)[:-2], 0.0)

    def test_validation(self):
        enc = self.make(n=2)
        with pytest.raises(ValueError):
            enc.record_round(np.zeros(3), np.zeros(2), np.zeros(2))
        with pytest.raises(ValueError):
            enc.record_round(
                np.array([np.inf, 0.0]), np.zeros(2), np.zeros(2)
            )
