"""Edge branches not covered by the mainline suites."""

import logging

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck
from repro.core.mechanism import Observation
from repro.experiments.runner import train_mechanism
from repro.utils.logging import set_verbosity


class TestGradcheckFailurePath:
    def test_reports_mismatch(self):
        # An op with a deliberately wrong backward must be caught.
        def broken(t):
            out_data = t.data * 2.0

            def backward(grad):
                t._accumulate(grad * 3.0)  # wrong: claims d(2t)/dt = 3

            return Tensor._make(out_data, (t,), "broken", backward)

        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(AssertionError, match="gradient mismatch"):
            gradcheck(broken, [t])


class TestObservation:
    def test_fields_coerced(self):
        obs = Observation(np.array([1, 2]), remaining_budget=np.float64(3.5), round_index=np.int64(2))
        assert obs.state.dtype == np.float64
        assert isinstance(obs.remaining_budget, float)
        assert isinstance(obs.round_index, int)


class TestMechanismBounds:
    def test_total_price_bounds_ordering(self, surrogate_env):
        from repro.baselines import FixedPriceMechanism

        env = surrogate_env.env
        mech = FixedPriceMechanism(env, markup=1.5)
        low, high = mech.total_price_bounds()
        assert 0 < low < high
        floors, caps = mech.per_node_price_bounds()
        assert np.all(floors < caps)


class TestRunnerLogging:
    def test_log_every_branch(self, surrogate_env, caplog):
        from repro.baselines import FixedPriceMechanism

        env = surrogate_env.env
        with caplog.at_level(logging.INFO, logger="repro.experiments.runner"):
            train_mechanism(
                env, FixedPriceMechanism(env, markup=2.0), episodes=2, log_every=1
            )
        assert any("episode" in record.message for record in caplog.records)


class TestSetVerbosity:
    def test_idempotent(self):
        root = set_verbosity(logging.WARNING)
        handlers_after_first = len(root.handlers)
        set_verbosity(logging.INFO)
        assert len(root.handlers) == handlers_after_first


class TestChironCheckpointMismatch:
    def test_fleet_size_mismatch_rejected(self, tmp_path, surrogate_env):
        from repro.core import build_environment
        from repro.experiments import make_mechanism

        env4 = surrogate_env.env  # 4 nodes
        agent4 = make_mechanism("chiron", env4, rng=0)
        path = agent4.save(tmp_path / "c4.npz")

        env3 = build_environment(n_nodes=3, budget=10.0, seed=0).env
        agent3 = make_mechanism("chiron", env3, rng=0)
        with pytest.raises((ValueError, KeyError)):
            agent3.load(path)


class TestEvalResultFields:
    def test_dataclass_contents(self, surrogate_env):
        build = surrogate_env
        # Surrogate envs have no evaluate(); use the nn metrics directly.
        from repro.datasets import make_task
        from repro.fl.metrics import evaluate
        from repro.nn import McMahanCNN

        task = make_task("mnist", rng=0)
        data = task.sample(20, rng=1)
        result = evaluate(McMahanCNN(rng=2), data)
        assert result.n_samples == 20
        assert 0 <= result.accuracy <= 1
        assert result.loss > 0


class TestStaticMechanismEndEpisode:
    def test_returns_empty_dict(self, surrogate_env):
        from repro.baselines import FixedPriceMechanism

        assert FixedPriceMechanism(surrogate_env.env, markup=2.0).end_episode() == {}
