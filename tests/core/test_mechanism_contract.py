"""Contract tests: every mechanism honors the IncentiveMechanism protocol.

Parametrized over the full registry so any new mechanism automatically
inherits the same obligations: valid price vectors, full-episode
compatibility with the runner, and repeatable diagnostics.
"""

import numpy as np
import pytest

from repro.core.mechanism import Observation
from repro.experiments.mechanisms import MECHANISM_NAMES, make_mechanism
from repro.experiments.runner import run_episode


def step_result(env, prices):
    """Step through the Gymnasium-style API, returning the StepResult."""
    *_, info = env.step(prices)
    return info["step_result"]



@pytest.fixture
def env(surrogate_env):
    return surrogate_env.env


@pytest.mark.parametrize("name", MECHANISM_NAMES)
class TestMechanismContract:
    def test_prices_valid(self, name, env):
        mechanism = make_mechanism(name, env, rng=0)
        state, _ = env.reset()
        obs = Observation(state, env.ledger.remaining, 0)
        mechanism.begin_episode(obs)
        prices = mechanism.propose_prices(obs)
        assert prices.shape == (env.n_nodes,)
        assert np.all(np.isfinite(prices))
        assert np.all(prices >= 0)

    def test_full_episode_runs(self, name, env):
        mechanism = make_mechanism(name, env, rng=0)
        episode, diagnostics = run_episode(env, mechanism)
        assert episode.rounds >= 0
        assert episode.budget_spent <= env.config.budget + 1e-9
        assert isinstance(diagnostics, dict)

    def test_two_episodes_back_to_back(self, name, env):
        mechanism = make_mechanism(name, env, rng=0)
        run_episode(env, mechanism)
        episode, _ = run_episode(env, mechanism)
        assert 0.0 <= episode.final_accuracy <= 1.0

    def test_name_matches_registry(self, name, env):
        assert make_mechanism(name, env, rng=0).name == name

    def test_attracts_participation(self, name, env):
        """Every shipped mechanism prices at least one node into the round."""
        mechanism = make_mechanism(name, env, rng=0)
        state, _ = env.reset()
        obs = Observation(state, env.ledger.remaining, 0)
        mechanism.begin_episode(obs)
        result = step_result(env, mechanism.propose_prices(obs))
        assert result.round_kept
        assert len(result.participants) >= 1
