"""The edge-learning MDP: lifecycle, budget semantics, invariants."""

import numpy as np
import pytest

from repro.core import EdgeLearningEnv, EnvConfig, build_environment
from repro.core.env import StepResult


def step_result(env, prices):
    """Step through the Gymnasium-style API, returning the StepResult."""
    *_, info = env.step(prices)
    return info["step_result"]



@pytest.fixture
def env(surrogate_env):
    return surrogate_env.env


def mid_prices(env):
    """Prices comfortably above every floor, below every cap."""
    return np.sqrt(env.price_floors * env.price_caps)


class TestLifecycle:
    def test_must_reset_before_step(self, env):
        with pytest.raises(RuntimeError):
            step_result(env, mid_prices(env))

    def test_reset_returns_state(self, env):
        state, _ = env.reset()
        assert state.shape == (env.state_dim,)
        assert not env.done
        assert env.round_index == 0

    def test_step_advances(self, env):
        env.reset()
        result = step_result(env, mid_prices(env))
        assert isinstance(result, StepResult)
        assert result.round_index == 1
        assert result.round_kept
        assert result.accuracy > 0

    def test_step_after_done_raises(self, env):
        env.reset()
        while not env.done:
            step_result(env, env.price_caps)  # expensive: exhausts budget fast
        with pytest.raises(RuntimeError):
            step_result(env, mid_prices(env))

    def test_reset_restores_budget_and_accuracy(self, env):
        env.reset()
        step_result(env, mid_prices(env))
        first_acc = env.accuracy
        state, _ = env.reset()
        assert env.ledger.remaining == env.config.budget
        assert env.accuracy < first_acc
        np.testing.assert_allclose(state[:-2], 0.0)


class TestPriceValidation:
    def test_shape(self, env):
        env.reset()
        with pytest.raises(ValueError):
            step_result(env, np.ones(2))

    def test_negative(self, env):
        env.reset()
        prices = mid_prices(env)
        prices[0] = -1.0
        with pytest.raises(ValueError):
            step_result(env, prices)

    def test_nonfinite(self, env):
        env.reset()
        prices = mid_prices(env)
        prices[0] = np.inf
        with pytest.raises(ValueError):
            step_result(env, prices)


class TestBudgetSemantics:
    def test_payments_charged(self, env):
        env.reset()
        result = step_result(env, mid_prices(env))
        assert result.payments.sum() > 0
        assert env.ledger.spent == pytest.approx(result.payments.sum())
        assert result.remaining_budget == pytest.approx(
            env.config.budget - result.payments.sum()
        )

    def test_overdraw_discards_round(self):
        build = build_environment(
            task_name="mnist", n_nodes=3, budget=0.35, accuracy_mode="surrogate",
            seed=0,
        )
        env = build.env
        env.reset()
        # Price caps cost far more than 0.35 total: first round overdraws.
        result = step_result(env, env.price_caps)
        assert result.done
        assert not result.round_kept
        assert result.participants == []
        assert env.accuracy == pytest.approx(env.learning.curve.a_init, abs=0.05)
        assert env.ledger.spent == 0.0

    def test_episode_ends_on_budget(self, env):
        env.reset()
        rounds = 0
        while not env.done:
            result = step_result(env, env.price_caps)
            rounds += 1
            assert rounds < 50  # caps are expensive; must end quickly
        assert result.done

    def test_spent_plus_remaining_invariant(self, env):
        env.reset()
        while not env.done:
            step_result(env, mid_prices(env))
            assert env.ledger.spent + env.ledger.remaining == pytest.approx(
                env.config.budget
            )


class TestNoParticipation:
    def test_zero_prices_waste_round(self, env):
        env.reset()
        result = step_result(env, np.zeros(env.n_nodes))
        assert not result.round_kept
        assert not result.done
        assert result.participants == []
        assert result.reward_exterior < 0  # penalty
        assert result.payments.sum() == 0
        assert env.ledger.spent == 0

    def test_wasted_rounds_still_count_toward_truncation(self):
        build = build_environment(
            task_name="mnist", n_nodes=3, budget=100.0, accuracy_mode="surrogate",
            seed=0, max_rounds=3,
        )
        env = build.env
        env.reset()
        for _ in range(3):
            result = step_result(env, np.zeros(3))
        assert result.done and result.truncated


class TestStepResultConsistency:
    def test_efficiency_matches_times(self, env):
        env.reset()
        result = step_result(env, mid_prices(env))
        times = result.times[result.participants]
        expected = times.sum() / (len(times) * times.max())
        assert result.efficiency == pytest.approx(expected)

    def test_round_time_is_makespan(self, env):
        env.reset()
        result = step_result(env, mid_prices(env))
        assert result.round_time == pytest.approx(
            result.times[result.participants].max()
        )

    def test_participant_utilities_clear_reserve(self, env):
        env.reset()
        result = step_result(env, mid_prices(env))
        for i in result.participants:
            reserve = env.population.column("reserve_utility")[i]
            assert result.utilities[i] >= reserve - 1e-12

    def test_decliner_fields_zero(self, env):
        env.reset()
        prices = mid_prices(env)
        prices[0] = 0.0  # node 0 declines
        result = step_result(env, prices)
        assert 0 not in result.participants
        assert result.payments[0] == 0
        assert result.zetas[0] == 0
        assert result.times[0] == 0

    def test_accuracy_monotone_under_steady_pricing(self, env):
        env.reset()
        prices = mid_prices(env)
        accs = []
        while not env.done and len(accs) < 10:
            accs.append(step_result(env, prices).accuracy)
        # Observation noise allows tiny dips; the trend must rise.
        assert accs[-1] > accs[0]


class TestTruncation:
    def test_max_rounds(self):
        build = build_environment(
            task_name="mnist", n_nodes=3, budget=1e6, accuracy_mode="surrogate",
            seed=0, max_rounds=4,
        )
        env = build.env
        env.reset()
        prices = np.sqrt(env.price_floors * env.price_caps)
        for _ in range(4):
            result = step_result(env, prices)
        assert result.done and result.truncated


class TestEnvConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EnvConfig(budget=0.0)
        with pytest.raises(ValueError):
            EnvConfig(budget=10.0, history=0)

    def test_time_scale_resolved(self, env):
        assert env.config.rewards.time_scale is not None
        assert env.config.rewards.time_scale > 0
