"""VectorizedEdgeLearningEnv: replica spawning, lockstep stepping, masks.

The load-bearing guarantee is bit-identity: an M-replica vector env must
reproduce, row for row, what its M replica environments produce when
stepped one at a time — including under fault injection.
"""

import numpy as np
import pytest

from repro.core import VectorizedEdgeLearningEnv, build_environment
from repro.faults import FaultConfig


def make_env(**kwargs):
    defaults = dict(
        task_name="mnist",
        n_nodes=4,
        budget=20.0,
        accuracy_mode="surrogate",
        seed=0,
        max_rounds=120,
    )
    defaults.update(kwargs)
    return build_environment(**defaults).env


def mid_prices(env):
    return np.sqrt(env.price_floors * env.price_caps)


class TestConstruction:
    def test_replica_zero_is_the_original(self):
        env = make_env()
        venv = VectorizedEdgeLearningEnv.from_env(env, 3)
        assert venv.num_envs == 3
        assert venv.envs[0] is env
        assert venv.envs[1] is not env and venv.envs[2] is not env

    def test_from_env_single(self):
        env = make_env()
        venv = VectorizedEdgeLearningEnv.from_env(env, 1)
        assert venv.num_envs == 1 and venv.envs[0] is env

    def test_replicas_are_decorrelated(self):
        venv = VectorizedEdgeLearningEnv.from_env(make_env(), 3)
        obs, _ = venv.reset()
        prices = np.tile(mid_prices(venv.envs[0]), (3, 1))
        for _ in range(3):
            obs, *_ = venv.step(prices)
        # Learning-noise streams differ, so accuracies diverge.
        accs = [env.accuracy for env in venv.envs]
        assert len(set(accs)) == 3

    def test_bad_inputs(self):
        env = make_env()
        with pytest.raises(ValueError, match="at least one"):
            VectorizedEdgeLearningEnv([])
        with pytest.raises(ValueError, match="num_envs"):
            VectorizedEdgeLearningEnv.from_env(env, 0)
        with pytest.raises(ValueError, match="share fleet size"):
            VectorizedEdgeLearningEnv([env, make_env(n_nodes=5)])

    def test_spawn_requires_clonable_learning(self):
        class NoClone:
            pass

        env = make_env()
        env.learning = NoClone()
        with pytest.raises(TypeError, match="clone"):
            env.spawn(7)


class TestBitIdentity:
    @pytest.mark.parametrize("faults", [None, FaultConfig.mixed(0.3, seed=5)])
    def test_vector_step_matches_individual_replicas(self, faults):
        """Lockstep stepping ≡ stepping each replica alone, incl. faults.

        Both executions are captured as EpisodeTraces (repro.testing) and
        compared digest-first; `first_divergence` localizes any mismatch
        to its replica/round/field instead of the hand-rolled per-field
        loop this test used to carry.
        """
        from repro.testing import (
            EpisodeTrace,
            capture_sequential,
            capture_vectorized,
            first_divergence,
        )

        kwargs = dict(availability=0.8, faults=faults)
        venv = VectorizedEdgeLearningEnv.from_env(make_env(**kwargs), 3)
        # from_env derives replica seeds deterministically from the base
        # env's seed, so a second vector env over an identical base yields
        # identical replicas — step those one at a time as the reference.
        singles = VectorizedEdgeLearningEnv.from_env(make_env(**kwargs), 3).envs

        seeds = [11, 22, 33]
        rounds = 5
        schedules = [np.tile(mid_prices(env), (rounds, 1)) for env in singles]
        vector_trace = capture_vectorized(venv, schedules, seeds, scenario="vec")
        single_traces = [
            capture_sequential(env, schedules[i], seeds[i], scenario="vec")
            for i, env in enumerate(singles)
        ]
        reference = EpisodeTrace(
            scenario="vec",
            episode_seed=seeds[0],
            replicas=[t.replicas[0] for t in single_traces],
            ledgers=[t.ledgers[0] for t in single_traces],
        )
        divergence = first_divergence(reference, vector_trace)
        assert divergence is None, divergence.describe()
        assert reference.digest() == vector_trace.digest()


class TestMaskingAndReset:
    def test_inactive_rows_are_frozen(self):
        venv = VectorizedEdgeLearningEnv.from_env(make_env(), 3)
        obs0, _ = venv.reset()
        prices = np.tile(mid_prices(venv.envs[0]), (3, 1))
        active = [True, False, True]
        obs, rewards, term, trunc, infos = venv.step(prices, active=active)
        np.testing.assert_array_equal(obs[1], obs0[1])
        assert rewards[1] == 0.0
        assert not term[1] and not trunc[1]
        assert infos[1] is None
        assert infos[0] is not None and infos[2] is not None
        assert venv.envs[1].round_index == 0
        assert venv.envs[0].round_index == 1

    def test_reset_at_touches_one_replica(self):
        venv = VectorizedEdgeLearningEnv.from_env(make_env(), 2)
        venv.reset()
        prices = np.tile(mid_prices(venv.envs[0]), (2, 1))
        venv.step(prices)
        obs, info = venv.reset_at(0)
        assert venv.envs[0].round_index == 0
        assert venv.envs[1].round_index == 1
        assert info["round_index"] == 0
        assert obs.shape == (venv.state_dim,)

    def test_price_shape_validated(self):
        venv = VectorizedEdgeLearningEnv.from_env(make_env(), 2)
        venv.reset()
        with pytest.raises(ValueError, match="shape"):
            venv.step(np.zeros((3, venv.n_nodes)))

    def test_reset_seed_count_validated(self):
        venv = VectorizedEdgeLearningEnv.from_env(make_env(), 2)
        with pytest.raises(ValueError, match="seeds"):
            venv.reset(seeds=[1])
