"""Environment builder coherence."""

import numpy as np
import pytest

from repro.core import build_environment
from repro.core.builder import COMPUTE_AMPLIFICATION, _bits_per_epoch
from repro.fl import RealTrainingAccuracy, SurrogateAccuracy


def step_result(env, prices):
    """Step through the Gymnasium-style API, returning the StepResult."""
    *_, info = env.step(prices)
    return info["step_result"]



class TestSurrogateMode:
    def test_builds(self, surrogate_env):
        build = surrogate_env
        assert isinstance(build.learning, SurrogateAccuracy)
        assert build.session is None
        assert build.env.n_nodes == 4
        assert build.data_sizes.sum() == 4 * 120

    def test_workload_follows_data(self, surrogate_env):
        build = surrogate_env
        bits = _bits_per_epoch("mnist", build.data_sizes)
        got = np.array([p.bits_per_epoch for p in build.profiles])
        np.testing.assert_allclose(got, bits)

    def test_weights_match_sizes(self, surrogate_env):
        build = surrogate_env
        expected = build.data_sizes / build.data_sizes.sum()
        np.testing.assert_allclose(build.learning.data_weights, expected)

    def test_deterministic(self):
        a = build_environment(task_name="mnist", n_nodes=3, budget=10, seed=5)
        b = build_environment(task_name="mnist", n_nodes=3, budget=10, seed=5)
        np.testing.assert_allclose(a.env.price_floors, b.env.price_floors)
        np.testing.assert_array_equal(a.data_sizes, b.data_sizes)

    def test_seed_changes_fleet(self):
        a = build_environment(task_name="mnist", n_nodes=3, budget=10, seed=1)
        b = build_environment(task_name="mnist", n_nodes=3, budget=10, seed=2)
        # Prices are ~1e-10 scale: compare with relative tolerance only.
        assert not np.allclose(a.env.price_floors, b.env.price_floors, atol=0.0)

    @pytest.mark.parametrize("scheme", ["iid", "dirichlet", "shards"])
    def test_partition_schemes(self, scheme):
        build = build_environment(
            task_name="mnist", n_nodes=4, budget=10, seed=0,
            partition_scheme=scheme, samples_per_node=50,
        )
        assert build.data_sizes.sum() == 200

    def test_cifar_heavier_than_mnist(self):
        sizes = np.array([100, 100])
        mnist_bits = _bits_per_epoch("mnist", sizes)
        cifar_bits = _bits_per_epoch("cifar10", sizes)
        # 3×32×32 vs 1×28×28 → ≈3.9× the workload per sample.
        np.testing.assert_allclose(cifar_bits / mnist_bits, 3072 / 784)


class TestRealMode:
    def test_builds_session(self):
        build = build_environment(
            task_name="mnist", n_nodes=3, budget=10, accuracy_mode="real",
            seed=0, samples_per_node=20, test_size=30,
        )
        assert isinstance(build.learning, RealTrainingAccuracy)
        assert build.session is not None
        assert build.session.n_nodes == 3

    def test_real_step_runs(self):
        build = build_environment(
            task_name="mnist", n_nodes=2, budget=10, accuracy_mode="real",
            seed=0, samples_per_node=15, test_size=20,
        )
        env = build.env
        env.reset()
        prices = np.sqrt(env.price_floors * env.price_caps)
        result = step_result(env, prices)
        assert result.round_kept
        assert 0 < result.accuracy <= 1


class TestValidation:
    def test_unknown_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            build_environment(task_name="svhn")

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="accuracy_mode"):
            build_environment(accuracy_mode="oracle")

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            build_environment(partition_scheme="alphabetical")

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            build_environment(n_nodes=0)
        with pytest.raises(ValueError):
            build_environment(samples_per_node=0)
