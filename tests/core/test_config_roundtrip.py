"""Unified config surface: dict round-trips and the BuildConfig path.

Every tunable dataclass must survive ``Config.from_dict(config.to_dict())``
unchanged (including nested configs), and ``build_environment`` must treat
a single ``BuildConfig`` and the equivalent keyword spelling identically.
"""

import json

import numpy as np
import pytest

from repro.core import ChironConfig, EnvConfig, RewardConfig, build_environment
from repro.core.builder import BuildConfig
from repro.faults import FaultConfig
from repro.rl import PPOConfig

ALL_CONFIGS = [
    EnvConfig(budget=20.0),
    EnvConfig(budget=35.0, availability=0.8, faults=FaultConfig.mixed(0.2)),
    RewardConfig(),
    PPOConfig(),
    ChironConfig(),
    BuildConfig(),
    FaultConfig(),
    FaultConfig.mixed(0.2, seed=3),
    PPOConfig(hidden=(32, 16), gamma=0.9, min_update_batch=64),
    BuildConfig(n_nodes=7, budget=55.0, faults=FaultConfig.mixed(0.1, seed=1)),
]


class TestRoundTrip:
    @pytest.mark.parametrize(
        "config", ALL_CONFIGS, ids=lambda c: type(c).__name__
    )
    def test_to_dict_from_dict_identity(self, config):
        data = config.to_dict()
        assert config.from_dict(data) == config

    @pytest.mark.parametrize(
        "config", ALL_CONFIGS, ids=lambda c: type(c).__name__
    )
    def test_to_dict_is_json_native(self, config):
        # Registry entries and checkpoints serialize these directly.
        restored = type(config).from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            PPOConfig.from_dict({"gamma": 0.9, "gammma": 0.9})

    def test_bad_values_fail_like_the_constructor(self):
        with pytest.raises(ValueError):
            PPOConfig.from_dict({"actor_lr": -1.0})

    def test_nested_configs_reconstructed(self):
        cfg = ChironConfig()
        restored = ChironConfig.from_dict(cfg.to_dict())
        assert isinstance(restored.exterior, PPOConfig)
        assert isinstance(restored.inner, PPOConfig)


class TestBuildConfigPath:
    KWARGS = dict(
        task_name="mnist",
        n_nodes=4,
        budget=15.0,
        accuracy_mode="surrogate",
        seed=0,
        max_rounds=60,
    )

    def run_fixed_price_episode(self, env):
        env.reset()
        prices = np.sqrt(env.price_floors * env.price_caps)
        trace = []
        while not env.done:
            *_, info = env.step(prices)
            trace.append(info["step_result"].accuracy)
        return trace

    def test_config_object_equals_keyword_spelling(self):
        by_kwargs = build_environment(**self.KWARGS).env
        by_config = build_environment(config=BuildConfig(**self.KWARGS)).env
        assert by_config.n_nodes == by_kwargs.n_nodes
        assert by_config.state_dim == by_kwargs.state_dim
        assert self.run_fixed_price_episode(by_config) == (
            self.run_fixed_price_episode(by_kwargs)
        )

    def test_build_method_on_config(self):
        build = BuildConfig(**self.KWARGS).build()
        assert build.env.n_nodes == 4

    def test_config_and_kwargs_clash(self):
        with pytest.raises(ValueError, match="not both"):
            build_environment(config=BuildConfig(**self.KWARGS), n_nodes=9)
