"""Inner-state extension: the allocation agent sees last round's times."""

import numpy as np
import pytest

from repro.core import ChironAgent, ChironConfig
from repro.core.mechanism import Observation
from repro.experiments.runner import train_mechanism
from repro.rl import PPOConfig


def step_result(env, prices):
    """Step through the Gymnasium-style API, returning the StepResult."""
    *_, info = env.step(prices)
    return info["step_result"]



def agent_with(env, observes_times):
    ppo = PPOConfig(actor_lr=1e-3, critic_lr=1e-3, hidden=(16, 16))
    return ChironAgent(
        env,
        ChironConfig(
            exterior=ppo, inner=ppo, inner_observes_times=observes_times
        ),
        rng=0,
    )


class TestInnerObservesTimes:
    def test_obs_dim_grows(self, surrogate_env):
        env = surrogate_env.env
        plain = agent_with(env, False)
        rich = agent_with(env, True)
        assert plain.inner.policy.obs_dim == 1
        assert rich.inner.policy.obs_dim == 1 + env.n_nodes

    def test_first_round_times_zero(self, surrogate_env):
        env = surrogate_env.env
        agent = agent_with(env, True)
        state, _ = env.reset()
        obs = Observation(state, env.ledger.remaining, 0)
        agent.begin_episode(obs)
        agent.propose_prices(obs)
        inner_obs = agent._pending["inn_obs"]
        np.testing.assert_allclose(inner_obs[1:], 0.0)

    def test_second_round_sees_times(self, surrogate_env):
        env = surrogate_env.env
        agent = agent_with(env, True)
        state, _ = env.reset()
        obs = Observation(state, env.ledger.remaining, 0)
        agent.begin_episode(obs)
        prices = agent.propose_prices(obs)
        result = step_result(env, prices)
        agent.observe(prices, result)
        obs2 = Observation(result.state, result.remaining_budget, result.round_index)
        agent.propose_prices(obs2)
        inner_obs = agent._pending["inn_obs"]
        expected = result.times / env.encoder.time_scale
        np.testing.assert_allclose(inner_obs[1:], expected)

    def test_times_reset_between_episodes(self, surrogate_env):
        env = surrogate_env.env
        agent = agent_with(env, True)
        train_mechanism(env, agent, episodes=1)
        state, _ = env.reset()
        obs = Observation(state, env.ledger.remaining, 0)
        agent.begin_episode(obs)
        agent.propose_prices(obs)
        np.testing.assert_allclose(agent._pending["inn_obs"][1:], 0.0)

    def test_trains_end_to_end(self, surrogate_env):
        env = surrogate_env.env
        agent = agent_with(env, True)
        history = train_mechanism(env, agent, episodes=5)
        assert len(history) == 5
