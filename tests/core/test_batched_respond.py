"""Cross-replica batched best response and eval-mode inference contracts.

The vectorized env answers all M replicas with ONE population call on the
(M, n) price matrix — sound only because spawned replicas share one
immutable population and the SoA best response is pure elementwise math
(row-for-row bit-identical to M separate calls).  Eval-mode Chiron skips
both critic forwards; transitions proposed that way carry no values and
must be rejected loudly if someone later tries to train on them.
"""

import numpy as np
import pytest

from repro.core import (
    ChironAgent,
    ChironConfig,
    VectorizedEdgeLearningEnv,
    build_environment,
)
from repro.core.mechanism import Observation
from repro.rl import PPOConfig


def make_env(**kwargs):
    defaults = dict(
        task_name="mnist",
        n_nodes=4,
        budget=20.0,
        accuracy_mode="surrogate",
        seed=0,
        max_rounds=120,
    )
    defaults.update(kwargs)
    return build_environment(**defaults).env


class TestBatchedRespond:
    def test_shared_population_detected_for_spawned_replicas(self):
        venv = VectorizedEdgeLearningEnv.from_env(make_env(), 4)
        assert venv._shared_population is venv.envs[0].population

    def test_single_replica_stays_on_scalar_path(self):
        venv = VectorizedEdgeLearningEnv.from_env(make_env(), 1)
        assert venv._shared_population is None

    def test_batched_step_bit_identical_to_per_replica_respond(self):
        # Same replicas, same prices: one venv answers the fleet with the
        # (M, n) batched call, the twin is forced onto the per-replica
        # path.  Every output row and every replica's internal state must
        # match bitwise over a full multi-round run.
        batched = VectorizedEdgeLearningEnv.from_env(make_env(), 4)
        singles = VectorizedEdgeLearningEnv.from_env(make_env(), 4)
        singles._shared_population = None
        assert batched._shared_population is not None

        batched.reset()
        singles.reset()
        rng = np.random.default_rng(21)
        floors = batched.envs[0].price_floors
        caps = batched.envs[0].price_caps
        active = [True] * 4
        for _ in range(12):
            prices = floors + rng.random((4, len(floors))) * (caps - floors)
            obs_b, rew_b, term_b, trunc_b, infos_b = batched.step(prices, active=active)
            obs_s, rew_s, term_s, trunc_s, infos_s = singles.step(prices, active=active)
            np.testing.assert_array_equal(obs_b, obs_s)
            np.testing.assert_array_equal(rew_b, rew_s)
            np.testing.assert_array_equal(term_b, term_s)
            np.testing.assert_array_equal(trunc_b, trunc_s)
            for info_b, info_s in zip(infos_b, infos_s):
                assert (info_b is None) == (info_s is None)
                if info_b is None:
                    continue
                sr_b = info_b["step_result"]
                sr_s = info_s["step_result"]
                assert sr_b.participants == sr_s.participants
                np.testing.assert_array_equal(sr_b.payments, sr_s.payments)
                np.testing.assert_array_equal(sr_b.zetas, sr_s.zetas)
                np.testing.assert_array_equal(sr_b.times, sr_s.times)
                assert sr_b.remaining_budget == sr_s.remaining_budget
            active = [
                a and not (t or tr)
                for a, t, tr in zip(active, term_b, trunc_b)
            ]
            if not any(active):
                break

    def test_copy_obs_false_returns_internal_buffer(self):
        venv = VectorizedEdgeLearningEnv.from_env(make_env(), 2)
        venv.reset()
        prices = np.tile(venv.envs[0].price_floors, (2, 1))
        obs, *_ = venv.step(prices, copy_obs=False)
        assert obs is venv._last_obs
        obs_copied, *_ = venv.step(prices)
        assert obs_copied is not venv._last_obs


class TestEvalModeValueSkip:
    def _agent_and_obs(self):
        env = make_env()
        ppo = PPOConfig(actor_lr=1e-3, critic_lr=1e-3, hidden=(32, 32))
        # deterministic_eval=False keeps eval on the sampled-action path,
        # so eval-vs-train prices are comparable stream for stream.
        agent = ChironAgent(
            env,
            ChironConfig(exterior=ppo, inner=ppo, deterministic_eval=False),
            rng=0,
        )
        state, _ = env.reset()
        return env, agent, Observation(state, env.ledger.remaining, 0)

    def test_eval_prices_match_training_prices_bitwise(self):
        # Skipping the critic forwards must not perturb the action path:
        # same weights, same noise stream, same prices.
        env_t, train_agent, obs_t = self._agent_and_obs()
        env_e, eval_agent, obs_e = self._agent_and_obs()
        eval_agent.eval_mode()
        train_agent.begin_episode(obs_t)
        eval_agent.begin_episode(obs_e)
        np.testing.assert_array_equal(
            eval_agent.propose_prices(obs_e), train_agent.propose_prices(obs_t)
        )

    def test_observe_after_eval_proposal_raises(self):
        env, agent, obs = self._agent_and_obs()
        agent.eval_mode()
        agent.begin_episode(obs)
        prices = agent.propose_prices(obs)
        *_, info = env.step(prices)
        agent.train_mode()
        with pytest.raises(RuntimeError, match="eval mode"):
            agent.observe(prices, info["step_result"])
