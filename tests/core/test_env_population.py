"""Environment ↔ Population integration: backends, spawn, deprecations."""

import numpy as np
import pytest

from repro.core.builder import BuildConfig, build_environment
from repro.population import ObjectPopulation, Population, SoAPopulation
from repro.population.api import _RAW_ACCESS_WARNED

pytestmark = pytest.mark.population


def _build(backend="soa", **overrides):
    config = BuildConfig(
        n_nodes=4, budget=15.0, seed=123, population_backend=backend, **overrides
    )
    return config.build().env


class TestBackendSelection:
    def test_default_is_soa(self):
        env = _build()
        assert isinstance(env.population, SoAPopulation)

    def test_object_backend_selectable(self):
        env = _build(backend="object")
        assert isinstance(env.population, ObjectPopulation)

    def test_population_satisfies_protocol(self):
        assert isinstance(_build().population, Population)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown population backend"):
            _build(backend="quantum")

    def test_builder_keyword_api(self):
        env = build_environment(
            n_nodes=3, budget=10.0, population_backend="object"
        ).env
        assert isinstance(env.population, ObjectPopulation)

    def test_backend_round_trips_through_config_dict(self):
        config = BuildConfig(n_nodes=3, population_backend="object")
        rebuilt = BuildConfig.from_dict(config.to_dict())
        assert rebuilt.population_backend == "object"
        assert rebuilt == config


class TestSpawnKeepsBackend:
    @pytest.mark.parametrize("backend", ["soa", "object"])
    def test_spawned_env_keeps_backend(self, backend):
        env = _build(backend=backend)
        child = env.spawn(seed=5)
        assert type(child.population) is type(env.population)
        assert child.population.n_nodes == env.population.n_nodes

    def test_spawned_env_shares_immutable_fleet(self):
        # Replicas decorrelate the stochastic streams, not the hardware:
        # the (immutable) population object is shared, coefficient caches
        # and all.
        env = _build()
        child = env.spawn(seed=5)
        assert child.population is env.population


class TestDeprecatedSurfaces:
    def test_env_profiles_property_warns(self):
        env = _build()
        _RAW_ACCESS_WARNED.discard("EdgeLearningEnv.profiles")
        with pytest.warns(DeprecationWarning, match="docs/api.md"):
            profiles = env.profiles
        assert len(profiles) == env.n_nodes
        assert profiles[0].zeta_max == env.population.column("zeta_max")[0]

    def test_session_nodes_property_warns(self):
        build = BuildConfig(
            n_nodes=3,
            budget=10.0,
            seed=3,
            accuracy_mode="real",
            samples_per_node=12,
            test_size=24,
        ).build()
        session = build.session
        _RAW_ACCESS_WARNED.discard("FederatedSession.nodes")
        with pytest.warns(DeprecationWarning, match="docs/api.md"):
            nodes = session.nodes
        assert sorted(nodes) == session.node_ids

    def test_legacy_env_warns_with_removal_version(self):
        import repro.core.env as env_mod

        env = _build()
        env_mod._LEGACY_API_WARNED = False  # once-per-process guard
        try:
            with pytest.warns(DeprecationWarning, match="removed in v2.0"):
                env.legacy().reset()
        finally:
            env_mod._LEGACY_API_WARNED = True
