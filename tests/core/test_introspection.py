"""Policy introspection tools."""

import numpy as np
import pytest

from repro.core.introspection import (
    exterior_pricing_curve,
    implied_round_plan,
    inner_allocation_map,
)
from repro.experiments.mechanisms import make_mechanism
from repro.experiments.runner import train_mechanism


@pytest.fixture
def trained_agent(surrogate_env):
    env = surrogate_env.env
    agent = make_mechanism("chiron", env, rng=1, tier="quick")
    train_mechanism(env, agent, episodes=10)
    return agent


class TestPricingCurve:
    def test_shape_and_bounds(self, trained_agent):
        curve = exterior_pricing_curve(trained_agent)
        assert curve.total_prices.shape == curve.budget_fractions.shape
        assert np.all(curve.total_prices >= trained_agent._price_low - 1e-15)
        assert np.all(curve.total_prices <= trained_agent._price_high + 1e-15)

    def test_custom_fractions(self, trained_agent):
        curve = exterior_pricing_curve(
            trained_agent, budget_fractions=(0.2, 0.8), round_index=3
        )
        assert curve.total_prices.shape == (2,)
        assert curve.round_index == 3

    def test_deterministic(self, trained_agent):
        a = exterior_pricing_curve(trained_agent).total_prices
        b = exterior_pricing_curve(trained_agent).total_prices
        np.testing.assert_allclose(a, b)


class TestAllocationMap:
    def test_rows_are_simplex(self, trained_agent):
        allocation = inner_allocation_map(trained_agent, grid=7)
        assert allocation.proportions.shape == (7, trained_agent.env.n_nodes)
        np.testing.assert_allclose(
            allocation.proportions.sum(axis=1), np.ones(7), atol=1e-9
        )
        assert np.all(allocation.proportions >= 0)

    def test_explicit_totals(self, trained_agent):
        totals = (trained_agent._price_low, trained_agent._price_high)
        allocation = inner_allocation_map(trained_agent, total_prices=totals)
        np.testing.assert_allclose(allocation.total_prices, totals)


class TestRoundPlan:
    def test_plan_consistent(self, trained_agent):
        plan = implied_round_plan(trained_agent)
        assert plan["participants"] <= trained_agent.env.n_nodes
        assert plan["round_payment"] >= 0
        if plan["round_payment"] > 0:
            expected = int(
                trained_agent.env.config.budget // plan["round_payment"]
            )
            assert plan["expected_rounds"] == expected
