"""The Gymnasium-style environment protocol (API redesign PR).

Covers the 5-tuple step contract, the terminated/truncated split, seeded
reset reproducibility, and the deprecation shim for the pre-redesign
signatures.
"""

import numpy as np
import pytest

import repro.core.env as env_module
from repro.core import LegacyEnvAdapter, StepResult, build_environment


def make_env(**kwargs):
    defaults = dict(
        task_name="mnist",
        n_nodes=4,
        budget=20.0,
        accuracy_mode="surrogate",
        seed=0,
        max_rounds=120,
    )
    defaults.update(kwargs)
    return build_environment(**defaults).env


def mid_prices(env):
    return np.sqrt(env.price_floors * env.price_caps)


class TestResetContract:
    def test_reset_returns_obs_and_info(self):
        env = make_env()
        obs, info = env.reset()
        assert isinstance(obs, np.ndarray)
        assert obs.shape == (env.state_dim,)
        assert info["round_index"] == 0
        assert info["remaining_budget"] == pytest.approx(env.ledger.remaining)
        assert 0.0 <= info["accuracy"] <= 1.0

    def test_seeded_reset_reproducible_after_prior_episodes(self):
        """reset(seed=s) pins *every* stochastic stream regardless of history.

        Churn, faults, AND the learning-noise stream rebase on a seeded
        reset.  The accuracy comparison pins a real bug the repro.testing
        differential tooling surfaced: the learning noise used to keep
        advancing across episodes, so a seeded reset on a warm environment
        produced a different accuracy trajectory than on a fresh one.
        """

        def trajectory(env):
            env.reset(seed=123)
            prices = mid_prices(env)
            out = []
            while not env.done:
                *_, info = env.step(prices)
                out.append(info["step_result"])
            return out

        a = make_env(availability=0.7)
        b = make_env(availability=0.7)
        # Burn two unseeded episodes on `a` so its substream counter differs.
        for _ in range(2):
            a.reset()
            while not a.done:
                a.step(mid_prices(a))
        ta, tb = trajectory(a), trajectory(b)
        assert len(ta) == len(tb)
        for ra, rb in zip(ta, tb):
            assert ra.participants == rb.participants
            assert ra.unavailable == rb.unavailable
            assert ra.accuracy == rb.accuracy
            assert ra.reward_exterior == rb.reward_exterior
            np.testing.assert_array_equal(ra.payments, rb.payments)
            np.testing.assert_array_equal(ra.state, rb.state)

    def test_unseeded_reset_keeps_learning_stream_advancing(self):
        """Without a seed, episodes stay decorrelated (training behavior)."""
        env = make_env(availability=1.0)

        def final_accuracy():
            env.reset()
            while not env.done:
                env.step(mid_prices(env))
            return env.accuracy

        assert final_accuracy() != final_accuracy()


class TestStepContract:
    def test_step_five_tuple(self):
        env = make_env()
        env.reset()
        obs, reward, terminated, truncated, info = env.step(mid_prices(env))
        assert isinstance(obs, np.ndarray) and obs.shape == (env.state_dim,)
        assert isinstance(reward, float)
        assert isinstance(terminated, bool) and isinstance(truncated, bool)
        result = info["step_result"]
        assert isinstance(result, StepResult)
        assert reward == result.reward_exterior
        assert info["reward_inner"] == result.reward_inner
        assert info["remaining_budget"] == result.remaining_budget
        assert info["round_index"] == result.round_index
        assert info["accuracy"] == result.accuracy
        np.testing.assert_array_equal(obs, result.state)

    def test_budget_exhaustion_terminates(self):
        env = make_env()
        env.reset()
        terminated = truncated = False
        while not env.done:
            _, _, terminated, truncated, _ = env.step(mid_prices(env))
        assert terminated and not truncated

    def test_max_rounds_truncates(self):
        env = make_env(budget=1e6, max_rounds=3)
        env.reset()
        terminated = truncated = False
        while not env.done:
            _, _, terminated, truncated, _ = env.step(mid_prices(env))
        assert truncated and not terminated
        assert env.round_index == 3

    def test_step_after_done_raises(self):
        env = make_env(budget=1e6, max_rounds=1)
        env.reset()
        env.step(mid_prices(env))
        with pytest.raises(RuntimeError, match="reset"):
            env.step(mid_prices(env))


class TestLegacyAdapter:
    @pytest.fixture(autouse=True)
    def fresh_warning_flag(self, monkeypatch):
        # The shim warns once per process; rearm it so each test observes
        # the first-use warning independently.
        monkeypatch.setattr(env_module, "_LEGACY_API_WARNED", False)

    def test_legacy_signatures(self):
        env = make_env()
        shim = env.legacy()
        assert isinstance(shim, LegacyEnvAdapter)
        with pytest.warns(DeprecationWarning):
            obs = shim.reset()
        assert isinstance(obs, np.ndarray) and obs.shape == (env.state_dim,)
        result = shim.step(mid_prices(env))
        assert isinstance(result, StepResult)
        assert result.round_index == 1

    def test_warns_exactly_once(self):
        shim = make_env().legacy()
        import warnings as _warnings

        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            shim.reset()
            shim.step(mid_prices(shim))
            shim.step(mid_prices(shim))
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_attribute_passthrough(self):
        env = make_env()
        shim = env.legacy()
        assert shim.n_nodes == env.n_nodes
        assert shim.state_dim == env.state_dim
        assert shim.ledger is env.ledger
