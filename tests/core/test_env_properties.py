"""Hypothesis fuzzing of the environment: invariants under arbitrary pricing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import build_environment


def step_result(env, prices):
    """Step through the Gymnasium-style API, returning the StepResult."""
    *_, info = env.step(prices)
    return info["step_result"]



def fresh_env(seed=0):
    return build_environment(
        task_name="mnist",
        n_nodes=3,
        budget=10.0,
        accuracy_mode="surrogate",
        seed=seed,
        max_rounds=40,
    ).env


@given(
    data=st.data(),
    seed=st.integers(0, 20),
)
@settings(max_examples=25, deadline=None)
def test_env_invariants_under_random_prices(data, seed):
    """Whatever the price sequence, the accounting invariants hold."""
    env = fresh_env(seed)
    env.reset()
    floor_scale = float(env.price_floors.mean())
    steps = 0
    previous_remaining = env.ledger.remaining
    while not env.done and steps < 40:
        multipliers = data.draw(
            st.lists(
                st.floats(0.0, 30.0, allow_nan=False),
                min_size=env.n_nodes,
                max_size=env.n_nodes,
            ),
            label="price multipliers",
        )
        prices = floor_scale * np.asarray(multipliers)
        result = step_result(env, prices)
        steps += 1

        # Budget never negative; spent+remaining == total.
        assert env.ledger.remaining >= -1e-9
        assert env.ledger.spent + env.ledger.remaining == pytest.approx(
            env.config.budget
        )
        # Budget is non-increasing.
        assert result.remaining_budget <= previous_remaining + 1e-9
        previous_remaining = result.remaining_budget

        # Accuracy is a probability.
        assert 0.0 <= result.accuracy <= 1.0

        # Participants paid, non-participants not.
        for i in range(env.n_nodes):
            if i in result.participants:
                assert result.payments[i] > 0
                assert result.times[i] > 0
            else:
                assert result.payments[i] == 0
                assert result.times[i] == 0

        # Efficiency bounded when anyone participated.
        if result.participants:
            n = len(result.participants)
            assert 1.0 / n - 1e-9 <= result.efficiency <= 1.0 + 1e-9

        # State stays finite and fixed-size.
        assert result.state.shape == (env.state_dim,)
        assert np.all(np.isfinite(result.state))


@given(seed=st.integers(0, 50))
@settings(max_examples=15, deadline=None)
def test_episode_always_terminates(seed):
    """Any constant positive pricing terminates (budget or truncation)."""
    env = fresh_env(seed)
    env.reset()
    rng = np.random.default_rng(seed)
    prices = env.price_floors * rng.uniform(1.0, 5.0, size=env.n_nodes)
    steps = 0
    while not env.done:
        step_result(env, prices)
        steps += 1
        assert steps <= env.config.max_rounds
