"""Gaussian policy and value network."""

import numpy as np
import pytest
from scipy import stats

from repro.autograd import gradcheck
from repro.rl import GaussianPolicy, ValueNetwork


class TestGaussianPolicy:
    def test_act_shapes(self, rng):
        policy = GaussianPolicy(6, 3, rng=0)
        action, log_prob = policy.act(rng.normal(size=6))
        assert action.shape == (3,)
        assert isinstance(log_prob, float)

    def test_deterministic_act_is_mean(self, rng):
        policy = GaussianPolicy(4, 2, rng=0)
        obs = rng.normal(size=4)
        a1, _ = policy.act(obs, deterministic=True)
        a2, _ = policy.act(obs, deterministic=True)
        np.testing.assert_allclose(a1, a2)

    def test_stochastic_act_varies(self, rng):
        policy = GaussianPolicy(4, 2, rng=0)
        obs = rng.normal(size=4)
        a1, _ = policy.act(obs)
        a2, _ = policy.act(obs)
        assert not np.allclose(a1, a2)

    def test_log_prob_matches_scipy(self, rng):
        policy = GaussianPolicy(4, 3, init_log_std=-0.3, rng=0)
        obs = rng.normal(size=(5, 4))
        actions = rng.normal(size=(5, 3))
        got = policy.log_prob(obs, actions).data
        means = policy.forward(obs).data
        std = policy.std()
        expected = stats.norm.logpdf(actions, means, std).sum(axis=1)
        np.testing.assert_allclose(got, expected, atol=1e-10)

    def test_act_log_prob_self_consistent(self, rng):
        policy = GaussianPolicy(4, 2, rng=0)
        obs = rng.normal(size=4)
        action, lp = policy.act(obs)
        lp_batch = policy.log_prob(obs, action[None]).data[0]
        assert lp == pytest.approx(lp_batch, abs=1e-10)

    def test_entropy_formula(self):
        policy = GaussianPolicy(3, 2, init_log_std=-0.5, rng=0)
        expected = 2 * (-0.5 + 0.5 * (1 + np.log(2 * np.pi)))
        assert policy.entropy().item() == pytest.approx(expected)

    def test_log_prob_gradient_flows(self, rng):
        policy = GaussianPolicy(3, 2, rng=0)
        obs = rng.normal(size=(4, 3))
        actions = rng.normal(size=(4, 2))
        loss = -policy.log_prob(obs, actions).mean()
        loss.backward()
        grads = [p.grad for p in policy.parameters()]
        assert all(g is not None for g in grads)
        assert any(np.abs(g).max() > 0 for g in grads)

    def test_log_std_clamped(self):
        policy = GaussianPolicy(3, 2, init_log_std=10.0, rng=0)
        assert policy.std().max() <= np.exp(2.0) + 1e-9

    def test_1d_obs_promoted(self, rng):
        policy = GaussianPolicy(3, 2, rng=0)
        out = policy.forward(rng.normal(size=3))
        assert out.shape == (1, 2)


class TestValueNetwork:
    def test_forward_shape(self, rng):
        net = ValueNetwork(5, rng=0)
        out = net(rng.normal(size=(7, 5)))
        assert out.shape == (7,)

    def test_value_scalar(self, rng):
        net = ValueNetwork(5, rng=0)
        v = net.value(rng.normal(size=5))
        assert isinstance(v, float)

    def test_trainable(self, rng):
        from repro.autograd import functional as F
        from repro.nn import Adam

        net = ValueNetwork(3, hidden=(16,), rng=0)
        x = rng.normal(size=(64, 3))
        y = x.sum(axis=1)
        opt = Adam(net.parameters(), lr=0.01)
        first = None
        for _ in range(150):
            opt.zero_grad()
            loss = F.mse_loss(net(x), y)
            if first is None:
                first = loss.item()
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.1
