"""PPO update diagnostics: KL estimate, clip fraction, explained variance."""

import numpy as np
import pytest

from repro.rl import PPOAgent, PPOConfig
from repro.rl.ppo import _explained_variance


def run_update(update_epochs=5, lr=1e-3, steps=32):
    agent = PPOAgent(
        4,
        2,
        config=PPOConfig(
            actor_lr=lr, critic_lr=lr, hidden=(16, 16),
            update_epochs=update_epochs, lr_decay_every=10_000,
        ),
        rng=0,
    )
    rng = np.random.default_rng(1)
    for i in range(steps):
        obs = rng.normal(size=4)
        a, lp, v = agent.act(obs)
        agent.store(obs, a, rng.normal(), v, lp, done=(i % 16 == 15))
    return agent.update()


class TestDiagnostics:
    def test_keys_present(self):
        stats = run_update()
        for key in (
            "actor_loss",
            "critic_loss",
            "entropy",
            "approx_kl",
            "clip_fraction",
            "explained_variance",
            "actor_lr",
            "batch_size",
        ):
            assert key in stats, key

    def test_clip_fraction_bounded(self):
        stats = run_update()
        assert 0.0 <= stats["clip_fraction"] <= 1.0

    def test_explained_variance_bounded_above(self):
        stats = run_update()
        assert stats["explained_variance"] <= 1.0 + 1e-9

    def test_tiny_lr_small_kl(self):
        gentle = run_update(lr=1e-6)
        assert abs(gentle["approx_kl"]) < 1e-3

    def test_bigger_lr_moves_policy_more(self):
        gentle = run_update(lr=1e-6)
        aggressive = run_update(lr=5e-3, update_epochs=10)
        assert abs(aggressive["approx_kl"]) > abs(gentle["approx_kl"])


class TestExplainedVariance:
    def test_perfect_critic(self):
        targets = np.array([1.0, 2.0, 3.0])
        assert _explained_variance(targets, targets) == pytest.approx(1.0)

    def test_mean_predictor_zero(self):
        targets = np.array([1.0, 2.0, 3.0])
        preds = np.full(3, targets.mean())
        assert _explained_variance(preds, targets) == pytest.approx(0.0)

    def test_constant_targets(self):
        assert _explained_variance(np.zeros(3), np.ones(3)) == 0.0

    def test_bad_critic_negative(self):
        targets = np.array([1.0, -1.0, 1.0, -1.0])
        preds = -targets  # anti-correlated
        assert _explained_variance(preds, targets) < 0
