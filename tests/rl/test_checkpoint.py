"""Agent checkpointing."""

import numpy as np
import pytest

from repro.rl import PPOAgent, PPOConfig, load_many, load_ppo, save_many, save_ppo


def trained_agent(seed=0, obs_dim=6, act_dim=2):
    agent = PPOAgent(
        obs_dim, act_dim, config=PPOConfig(actor_lr=1e-3, critic_lr=1e-3), rng=seed
    )
    rng = np.random.default_rng(seed)
    for i in range(16):
        obs = rng.normal(size=obs_dim)
        a, lp, v = agent.act(obs)
        agent.store(obs, a, rng.normal(), v, lp, done=(i % 8 == 7))
    agent.update()
    return agent


class TestSingleAgent:
    def test_roundtrip(self, tmp_path):
        agent = trained_agent(0)
        path = save_ppo(agent, tmp_path / "agent.npz")
        clone = PPOAgent(6, 2, config=agent.config, rng=99)
        load_ppo(clone, path)
        np.testing.assert_allclose(
            clone.policy.flat_parameters(), agent.policy.flat_parameters()
        )
        np.testing.assert_allclose(
            clone.value_net.flat_parameters(), agent.value_net.flat_parameters()
        )
        assert clone.episodes_seen == agent.episodes_seen
        assert clone.actor_opt.lr == agent.actor_opt.lr
        np.testing.assert_allclose(clone.obs_stat.mean, agent.obs_stat.mean)

    def test_restored_policy_acts_identically(self, tmp_path):
        agent = trained_agent(1)
        path = save_ppo(agent, tmp_path / "agent.npz")
        clone = PPOAgent(6, 2, config=agent.config, rng=5)
        load_ppo(clone, path)
        obs = np.random.default_rng(3).normal(size=6)
        a1, _, v1 = agent.act(obs, deterministic=True)
        a2, _, v2 = clone.act(obs, deterministic=True)
        np.testing.assert_allclose(a1, a2)
        assert v1 == pytest.approx(v2)

    def test_suffix_appended(self, tmp_path):
        agent = trained_agent(0)
        path = save_ppo(agent, tmp_path / "bare")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_architecture_mismatch(self, tmp_path):
        agent = trained_agent(0)
        path = save_ppo(agent, tmp_path / "agent.npz")
        wrong = PPOAgent(8, 2, config=agent.config, rng=0)
        with pytest.raises(ValueError):
            load_ppo(wrong, path)


class TestManyAgents:
    def test_roundtrip(self, tmp_path):
        agents = {"a": trained_agent(0), "b": trained_agent(1, obs_dim=4, act_dim=3)}
        path = save_many(agents, tmp_path / "pair.npz")
        clones = {
            "a": PPOAgent(6, 2, config=agents["a"].config, rng=7),
            "b": PPOAgent(4, 3, config=agents["b"].config, rng=8),
        }
        load_many(clones, path)
        for name in agents:
            np.testing.assert_allclose(
                clones[name].policy.flat_parameters(),
                agents[name].policy.flat_parameters(),
            )

    def test_missing_prefix(self, tmp_path):
        path = save_many({"a": trained_agent(0)}, tmp_path / "a.npz")
        with pytest.raises(KeyError):
            load_many({"zzz": PPOAgent(6, 2, rng=0)}, path)


class TestChironCheckpoint:
    def test_save_load_restores_policy(self, tmp_path, surrogate_env):
        from repro.experiments.mechanisms import make_mechanism
        from repro.experiments.runner import evaluate_mechanism, train_mechanism

        env = surrogate_env.env
        agent = make_mechanism("chiron", env, rng=1, tier="quick")
        train_mechanism(env, agent, episodes=10)
        path = agent.save(tmp_path / "chiron.npz")

        fresh = make_mechanism("chiron", env, rng=2, tier="quick")
        fresh.load(path)
        original_eval = evaluate_mechanism(env, agent, 2)
        restored_eval = evaluate_mechanism(env, fresh, 2)
        for a, b in zip(original_eval, restored_eval):
            assert a.final_accuracy == pytest.approx(b.final_accuracy, abs=0.02)
            assert a.rounds == b.rounds
