"""Agent checkpointing."""

import numpy as np
import pytest

from repro.rl import PPOAgent, PPOConfig, load_many, load_ppo, save_many, save_ppo


def trained_agent(seed=0, obs_dim=6, act_dim=2):
    agent = PPOAgent(
        obs_dim, act_dim, config=PPOConfig(actor_lr=1e-3, critic_lr=1e-3), rng=seed
    )
    rng = np.random.default_rng(seed)
    for i in range(16):
        obs = rng.normal(size=obs_dim)
        a, lp, v = agent.act(obs)
        agent.store(obs, a, rng.normal(), v, lp, done=(i % 8 == 7))
    agent.update()
    return agent


class TestSingleAgent:
    def test_roundtrip(self, tmp_path):
        agent = trained_agent(0)
        path = save_ppo(agent, tmp_path / "agent.npz")
        clone = PPOAgent(6, 2, config=agent.config, rng=99)
        load_ppo(clone, path)
        np.testing.assert_allclose(
            clone.policy.flat_parameters(), agent.policy.flat_parameters()
        )
        np.testing.assert_allclose(
            clone.value_net.flat_parameters(), agent.value_net.flat_parameters()
        )
        assert clone.episodes_seen == agent.episodes_seen
        assert clone.actor_opt.lr == agent.actor_opt.lr
        np.testing.assert_allclose(clone.obs_stat.mean, agent.obs_stat.mean)

    def test_restored_policy_acts_identically(self, tmp_path):
        agent = trained_agent(1)
        path = save_ppo(agent, tmp_path / "agent.npz")
        clone = PPOAgent(6, 2, config=agent.config, rng=5)
        load_ppo(clone, path)
        obs = np.random.default_rng(3).normal(size=6)
        a1, _, v1 = agent.act(obs, deterministic=True)
        a2, _, v2 = clone.act(obs, deterministic=True)
        np.testing.assert_allclose(a1, a2)
        assert v1 == pytest.approx(v2)

    def test_suffix_appended(self, tmp_path):
        agent = trained_agent(0)
        path = save_ppo(agent, tmp_path / "bare")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_architecture_mismatch(self, tmp_path):
        agent = trained_agent(0)
        path = save_ppo(agent, tmp_path / "agent.npz")
        wrong = PPOAgent(8, 2, config=agent.config, rng=0)
        with pytest.raises(ValueError):
            load_ppo(wrong, path)


class TestManyAgents:
    def test_roundtrip(self, tmp_path):
        agents = {"a": trained_agent(0), "b": trained_agent(1, obs_dim=4, act_dim=3)}
        path = save_many(agents, tmp_path / "pair.npz")
        clones = {
            "a": PPOAgent(6, 2, config=agents["a"].config, rng=7),
            "b": PPOAgent(4, 3, config=agents["b"].config, rng=8),
        }
        load_many(clones, path)
        for name in agents:
            np.testing.assert_allclose(
                clones[name].policy.flat_parameters(),
                agents[name].policy.flat_parameters(),
            )

    def test_missing_prefix(self, tmp_path):
        path = save_many({"a": trained_agent(0)}, tmp_path / "a.npz")
        with pytest.raises(KeyError):
            load_many({"zzz": PPOAgent(6, 2, rng=0)}, path)


class TestBitwiseResume:
    """A mid-training round trip must resume the run bit for bit.

    Full fidelity requires more than parameters: Adam moments and step
    counts, LR-scheduler ticks, and the exact positions of the policy
    sampling and minibatch shuffle streams.  These tests drive the saved
    agent and its restored clone through identical post-checkpoint work
    and demand exact equality — any drift means some state escaped the
    checkpoint.
    """

    def _roundtrip_clone(self, agent, tmp_path):
        path = save_ppo(agent, tmp_path / "mid.npz")
        clone = PPOAgent(6, 2, config=agent.config, rng=4242)
        load_ppo(clone, path)
        return clone

    def test_stochastic_act_stream_bitwise_identical(self, tmp_path):
        agent = trained_agent(2)
        clone = self._roundtrip_clone(agent, tmp_path)
        obs_stream = np.random.default_rng(7).normal(size=(12, 6))
        for obs in obs_stream:
            a1, lp1, v1 = agent.act(obs)
            a2, lp2, v2 = clone.act(obs)
            np.testing.assert_array_equal(a1, a2)
            assert lp1 == lp2
            assert v1 == v2

    def test_update_bitwise_identical(self, tmp_path):
        agent = trained_agent(3)
        clone = self._roundtrip_clone(agent, tmp_path)
        # Feed both agents the same post-checkpoint episode.  Actions are
        # sampled (stochastic) — identical only if the policy RNG stream
        # was restored at its exact position.
        reward_rng = np.random.default_rng(17)
        obs_stream = np.random.default_rng(23).normal(size=(10, 6))
        rewards = reward_rng.normal(size=10)
        for which in (agent, clone):
            for i, obs in enumerate(obs_stream):
                a, lp, v = which.act(obs)
                which.store(obs, a, float(rewards[i]), v, lp, done=(i == 9))
        stats_a = agent.update()
        stats_b = clone.update()
        np.testing.assert_array_equal(
            agent.policy.flat_parameters(), clone.policy.flat_parameters()
        )
        np.testing.assert_array_equal(
            agent.value_net.flat_parameters(), clone.value_net.flat_parameters()
        )
        assert stats_a == stats_b
        assert agent.actor_opt.lr == clone.actor_opt.lr
        assert agent.actor_opt.step_count == clone.actor_opt.step_count
        assert agent._actor_sched.ticks == clone._actor_sched.ticks

    def test_optimizer_moments_round_trip_exactly(self, tmp_path):
        agent = trained_agent(4)
        clone = self._roundtrip_clone(agent, tmp_path)
        for name in ("actor_opt", "critic_opt"):
            orig = getattr(agent, name).flat_state()
            restored = getattr(clone, name).flat_state()
            np.testing.assert_array_equal(orig["m"], restored["m"])
            np.testing.assert_array_equal(orig["v"], restored["v"])
            assert orig["step_count"][0] == restored["step_count"][0]

    def test_legacy_archive_without_new_keys_still_loads(self, tmp_path):
        from repro.rl.checkpoint import load_ppo_state, ppo_state_dict

        agent = trained_agent(5)
        state = ppo_state_dict(agent)
        legacy = {
            k: v
            for k, v in state.items()
            if "opt_" not in k and "sched" not in k and "rng" not in k
        }
        clone = PPOAgent(6, 2, config=agent.config, rng=31)
        load_ppo_state(clone, legacy)
        np.testing.assert_array_equal(
            clone.policy.flat_parameters(), agent.policy.flat_parameters()
        )
        # Ancillary state stays at its fresh defaults.
        assert clone.actor_opt.step_count == 0


class TestChironBitwiseResume:
    """Hierarchical save/load: both sub-agents resume bit for bit."""

    def test_exterior_and_inner_resume_bitwise(self, tmp_path, surrogate_env):
        from repro.core.chiron import ChironAgent, ChironConfig
        from repro.core.mechanism import Observation
        from repro.experiments.runner import run_episode, train_mechanism

        env = surrogate_env.env
        agent = ChironAgent(env, ChironConfig(), rng=np.random.default_rng(5))
        train_mechanism(env, agent, episodes=2)
        path = agent.save(tmp_path / "chiron_mid.npz")

        fresh = ChironAgent(env, ChironConfig(), rng=np.random.default_rng(99))
        fresh.load(path)

        # Identical twin environments: same spawn seed -> same streams.
        env_a = env.spawn(123)
        env_b = env.spawn(123)
        result_a, diag_a = run_episode(env_a, agent)
        result_b, diag_b = run_episode(env_b, fresh)

        assert result_a.reward_exterior == result_b.reward_exterior
        assert result_a.reward_inner == result_b.reward_inner
        assert result_a.final_accuracy == result_b.final_accuracy
        assert result_a.rounds == result_b.rounds
        assert diag_a == diag_b
        for name in ("exterior", "inner"):
            np.testing.assert_array_equal(
                getattr(agent, name).policy.flat_parameters(),
                getattr(fresh, name).policy.flat_parameters(),
            )
            np.testing.assert_array_equal(
                getattr(agent, name).value_net.flat_parameters(),
                getattr(fresh, name).value_net.flat_parameters(),
            )

        # And the *next* stochastic action agrees too (RNG positions).
        state, _ = env_a.reset(seed=7)
        obs = Observation(state, env_a.ledger.remaining, env_a.round_index)
        np.testing.assert_array_equal(
            agent.propose_prices(obs), fresh.propose_prices(obs)
        )


class TestChironCheckpoint:
    def test_save_load_restores_policy(self, tmp_path, surrogate_env):
        from repro.experiments.mechanisms import make_mechanism
        from repro.experiments.runner import evaluate_mechanism, train_mechanism

        env = surrogate_env.env
        agent = make_mechanism("chiron", env, rng=1, tier="quick")
        train_mechanism(env, agent, episodes=10)
        path = agent.save(tmp_path / "chiron.npz")

        fresh = make_mechanism("chiron", env, rng=2, tier="quick")
        fresh.load(path)
        original_eval = evaluate_mechanism(env, agent, 2)
        restored_eval = evaluate_mechanism(env, fresh, 2)
        for a, b in zip(original_eval, restored_eval):
            assert a.final_accuracy == pytest.approx(b.final_accuracy, abs=0.02)
            assert a.rounds == b.rounds


class TestBufferRoundTrip:
    """Pending rollout transitions survive a checkpoint (PR 6).

    With ``min_update_batch`` larger than one episode, transitions carry
    across episode boundaries — dropping them on resume would silently
    change the next update.
    """

    def test_flat_state_round_trips_pending_transitions(self):
        agent = trained_agent(2)
        rng = np.random.default_rng(7)
        for i in range(5):  # leave un-consumed transitions in the buffer
            obs = rng.normal(size=6)
            a, lp, v = agent.act(obs)
            agent.store(obs, a, rng.normal(), v, lp, done=(i == 4))
        state = agent.buffer.flat_state()

        clone = trained_agent(2)
        clone.buffer.clear()
        clone.buffer.load_flat_state(state)
        assert len(clone.buffer) == len(agent.buffer)
        mine, theirs = agent.buffer.flat_state(), clone.buffer.flat_state()
        for key in mine:
            np.testing.assert_array_equal(mine[key], theirs[key])

    def test_empty_buffer_round_trips(self):
        agent = trained_agent(3)
        assert len(agent.buffer) == 0  # update() consumed it
        state = agent.buffer.flat_state()
        clone = trained_agent(3)
        clone.buffer.load_flat_state(state)
        assert len(clone.buffer) == 0

    def test_save_ppo_preserves_buffer_through_archive(self, tmp_path):
        agent = trained_agent(4)
        rng = np.random.default_rng(11)
        for i in range(3):
            obs = rng.normal(size=6)
            a, lp, v = agent.act(obs)
            agent.store(obs, a, rng.normal(), v, lp, done=False)
        path = save_ppo(agent, tmp_path / "agent.npz")
        clone = PPOAgent(6, 2, config=agent.config, rng=99)
        load_ppo(clone, path)
        assert len(clone.buffer) == 3
        batch_a = agent.buffer.compute(last_value=0.5)
        batch_b = clone.buffer.compute(last_value=0.5)
        np.testing.assert_array_equal(batch_a.obs, batch_b.obs)
        np.testing.assert_array_equal(batch_a.advantages, batch_b.advantages)
