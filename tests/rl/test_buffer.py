"""Rollout buffer and GAE against a brute-force reference."""

import numpy as np
import pytest

from repro.rl import RolloutBuffer


def reference_gae(rewards, values, dones, gamma, lam, last_value):
    """Straightforward O(n²)-style reference implementation."""
    n = len(rewards)
    adv = np.zeros(n)
    for t in range(n):
        gae = 0.0
        discount = 1.0
        for k in range(t, n):
            next_v = last_value if k == n - 1 else values[k + 1]
            nonterm = 0.0 if dones[k] else 1.0
            delta = rewards[k] + gamma * next_v * nonterm - values[k]
            gae += discount * delta
            if dones[k]:
                break
            discount *= gamma * lam
        adv[t] = gae
    return adv


def fill_buffer(buffer, rewards, values, dones, rng):
    for r, v, d in zip(rewards, values, dones):
        buffer.push(rng.normal(size=3), rng.normal(size=2), r, v, 0.1, d)


class TestGAE:
    @pytest.mark.parametrize("gamma,lam", [(0.95, 0.95), (0.99, 0.9), (0.0, 0.0)])
    def test_matches_reference(self, gamma, lam, rng):
        n = 12
        rewards = rng.normal(size=n)
        values = rng.normal(size=n)
        dones = np.zeros(n, dtype=bool)
        dones[5] = True
        dones[-1] = True
        buffer = RolloutBuffer(gamma=gamma, gae_lambda=lam)
        fill_buffer(buffer, rewards, values, dones, rng)
        batch = buffer.compute(last_value=0.7)
        expected = reference_gae(rewards, values, dones, gamma, lam, 0.7)
        np.testing.assert_allclose(batch.advantages, expected, atol=1e-10)
        np.testing.assert_allclose(batch.returns, expected + values, atol=1e-10)

    def test_gamma_zero_is_myopic(self, rng):
        # γ=0: advantage = r − V(s), exactly one-step.
        rewards = np.array([1.0, 2.0, 3.0])
        values = np.array([0.5, 0.5, 0.5])
        buffer = RolloutBuffer(gamma=0.0, gae_lambda=0.0)
        fill_buffer(buffer, rewards, values, [False, False, True], rng)
        batch = buffer.compute()
        np.testing.assert_allclose(batch.advantages, rewards - values)

    def test_terminal_blocks_bootstrap(self, rng):
        rewards = np.array([0.0, 10.0])
        values = np.array([0.0, 0.0])
        buffer = RolloutBuffer(gamma=1.0, gae_lambda=1.0)
        fill_buffer(buffer, rewards, values, [True, True], rng)
        batch = buffer.compute(last_value=100.0)
        # Step 0 is terminal: no credit from step 1's reward or last_value.
        assert batch.advantages[0] == pytest.approx(0.0)

    def test_empty_buffer_raises(self):
        with pytest.raises(ValueError):
            RolloutBuffer().compute()

    def test_clear(self, rng):
        buffer = RolloutBuffer()
        fill_buffer(buffer, [1.0], [0.0], [True], rng)
        buffer.clear()
        assert len(buffer) == 0


class TestMinibatches:
    def test_cover_every_row_once(self, rng):
        buffer = RolloutBuffer()
        fill_buffer(buffer, rng.normal(size=10), rng.normal(size=10), [False] * 9 + [True], rng)
        batch = buffer.compute()
        seen = []
        for mb in RolloutBuffer.minibatches(batch, 3, rng=0):
            seen.extend(mb.returns.tolist())
        assert sorted(seen) == sorted(batch.returns.tolist())

    def test_minibatch_sizes(self, rng):
        buffer = RolloutBuffer()
        fill_buffer(buffer, rng.normal(size=10), rng.normal(size=10), [False] * 10, rng)
        batch = buffer.compute()
        sizes = [len(mb) for mb in RolloutBuffer.minibatches(batch, 4, rng=0)]
        assert sizes == [4, 4, 2]

    def test_invalid_size(self, rng):
        buffer = RolloutBuffer()
        fill_buffer(buffer, [1.0], [0.0], [True], rng)
        batch = buffer.compute()
        with pytest.raises(ValueError):
            list(RolloutBuffer.minibatches(batch, 0))


class TestValidation:
    def test_gamma_range(self):
        with pytest.raises(ValueError):
            RolloutBuffer(gamma=1.5)
        with pytest.raises(ValueError):
            RolloutBuffer(gae_lambda=-0.1)

    def test_push_copies_arrays(self, rng):
        buffer = RolloutBuffer()
        obs = np.zeros(3)
        buffer.push(obs, np.zeros(2), 0.0, 0.0, 0.0, True)
        obs += 99.0
        batch = buffer.compute()
        np.testing.assert_allclose(batch.obs[0], 0.0)
