"""A2C agent (unclipped ablation of PPO)."""

import numpy as np
import pytest

from repro.rl import A2CAgent, PPOConfig


def fast_config(**overrides):
    params = dict(
        actor_lr=3e-3, critic_lr=3e-3, hidden=(32, 32), lr_decay_every=10_000,
    )
    params.update(overrides)
    return PPOConfig(**params)


class TestA2C:
    def test_single_epoch_forced(self):
        agent = A2CAgent(4, 2, config=fast_config(update_epochs=10), rng=0)
        assert agent.config.update_epochs == 1

    def test_update_diagnostics(self, rng):
        agent = A2CAgent(4, 2, config=fast_config(), rng=0)
        for i in range(16):
            obs = rng.normal(size=4)
            a, lp, v = agent.act(obs)
            agent.store(obs, a, rng.normal(), v, lp, done=(i == 15))
        stats = agent.update()
        assert stats["clip_fraction"] == 0.0
        assert "approx_kl" in stats

    def test_learns_bandit(self):
        agent = A2CAgent(3, 1, config=fast_config(), rng=0)
        obs = np.array([0.5, -0.2, 1.0])
        for _episode in range(80):
            for step in range(16):
                a, lp, v = agent.act(obs)
                reward = -((a[0] - 2.0) ** 2)
                agent.store(obs, a, reward, v, lp, done=(step == 15))
            agent.update()
        mean, _ = agent.policy.act(agent._normalize(obs), deterministic=True)
        assert abs(mean[0] - 2.0) < 0.8

    def test_checkpoint_compatible(self, tmp_path):
        from repro.rl import load_ppo, save_ppo

        agent = A2CAgent(4, 2, config=fast_config(), rng=0)
        path = save_ppo(agent, tmp_path / "a2c.npz")
        clone = A2CAgent(4, 2, config=fast_config(), rng=9)
        load_ppo(clone, path)
        np.testing.assert_allclose(
            clone.policy.flat_parameters(), agent.policy.flat_parameters()
        )


class TestChironWithA2C:
    def test_config_validation(self):
        from repro.core import ChironConfig

        with pytest.raises(ValueError, match="algorithm"):
            ChironConfig(algorithm="dqn")

    def test_full_training(self, surrogate_env):
        from repro.core import ChironAgent, ChironConfig
        from repro.experiments.runner import train_mechanism

        env = surrogate_env.env
        ppo_cfg = fast_config()
        agent = ChironAgent(
            env,
            ChironConfig(exterior=ppo_cfg, inner=ppo_cfg, algorithm="a2c"),
            rng=0,
        )
        assert isinstance(agent.exterior, A2CAgent)
        history = train_mechanism(env, agent, episodes=5)
        assert len(history) == 5
