"""Box space and running statistics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rl import Box, RunningMeanStd


class TestBox:
    def test_construction(self):
        box = Box(-1.0, 1.0, (3,))
        assert box.shape == (3,)
        assert box.dim == 3
        np.testing.assert_allclose(box.low, -1.0)

    def test_array_bounds(self):
        box = Box(np.array([0.0, -1.0]), np.array([1.0, 1.0]), (2,))
        assert box.contains(np.array([0.5, 0.0]))
        assert not box.contains(np.array([-0.5, 0.0]))

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Box(1.0, 0.0, (2,))

    def test_sample_within(self):
        box = Box(-2.0, 3.0, (4,))
        for _ in range(10):
            assert box.contains(box.sample(rng=0))

    def test_clip(self):
        box = Box(0.0, 1.0, (2,))
        np.testing.assert_allclose(box.clip(np.array([-5.0, 5.0])), [0.0, 1.0])

    def test_contains_shape_mismatch(self):
        assert not Box(0.0, 1.0, (2,)).contains(np.zeros(3))


class TestRunningMeanStd:
    def test_matches_numpy_single_batch(self, rng):
        data = rng.normal(loc=3.0, scale=2.0, size=(500, 4))
        stat = RunningMeanStd((4,))
        stat.update(data)
        np.testing.assert_allclose(stat.mean, data.mean(axis=0), atol=0.05)
        np.testing.assert_allclose(stat.var, data.var(axis=0), atol=0.1)

    def test_incremental_equals_batch(self, rng):
        data = rng.normal(size=(300, 3))
        whole = RunningMeanStd((3,), epsilon=1e-8)
        whole.update(data)
        parts = RunningMeanStd((3,), epsilon=1e-8)
        for chunk in np.array_split(data, 7):
            parts.update(chunk)
        np.testing.assert_allclose(parts.mean, whole.mean, atol=1e-9)
        np.testing.assert_allclose(parts.var, whole.var, atol=1e-9)

    def test_single_row_update(self):
        stat = RunningMeanStd((2,))
        stat.update(np.array([1.0, 2.0]))  # 1-D row is accepted
        assert stat.count > 1e-4

    def test_normalize_clip(self, rng):
        stat = RunningMeanStd((1,))
        stat.update(rng.normal(size=(100, 1)))
        out = stat.normalize(np.array([1e9]), clip=5.0)
        np.testing.assert_allclose(out, [5.0])

    def test_shape_mismatch(self):
        stat = RunningMeanStd((3,))
        with pytest.raises(ValueError):
            stat.update(np.zeros((5, 4)))

    @given(seed=st.integers(0, 50), splits=st.integers(1, 10))
    @settings(max_examples=30, deadline=None)
    def test_merge_associativity_property(self, seed, splits):
        data = np.random.default_rng(seed).normal(size=(120, 2))
        a = RunningMeanStd((2,), epsilon=1e-8)
        a.update(data)
        b = RunningMeanStd((2,), epsilon=1e-8)
        for chunk in np.array_split(data, splits):
            if chunk.size:
                b.update(chunk)
        np.testing.assert_allclose(a.mean, b.mean, atol=1e-8)
        np.testing.assert_allclose(a.var, b.var, atol=1e-8)
