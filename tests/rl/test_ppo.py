"""PPO agent: mechanics and learning."""

import numpy as np
import pytest

from repro.rl import PPOAgent, PPOConfig


def fast_config(**overrides):
    params = dict(
        actor_lr=3e-3,
        critic_lr=3e-3,
        hidden=(32, 32),
        update_epochs=5,
        lr_decay_every=10_000,
    )
    params.update(overrides)
    return PPOConfig(**params)


class TestMechanics:
    def test_act_and_store(self, rng):
        agent = PPOAgent(4, 2, config=fast_config(), rng=0)
        obs = rng.normal(size=4)
        action, log_prob, value = agent.act(obs)
        assert action.shape == (2,)
        agent.store(obs, action, 1.0, value, log_prob, done=True)
        assert len(agent.buffer) == 1

    def test_update_clears_buffer_and_counts(self, rng):
        agent = PPOAgent(4, 2, config=fast_config(), rng=0)
        for i in range(8):
            obs = rng.normal(size=4)
            a, lp, v = agent.act(obs)
            agent.store(obs, a, float(i), v, lp, done=(i == 7))
        stats = agent.update()
        assert len(agent.buffer) == 0
        assert agent.episodes_seen == 1
        for key in ("actor_loss", "critic_loss", "entropy", "actor_lr"):
            assert key in stats

    def test_update_empty_raises(self):
        agent = PPOAgent(4, 2, config=fast_config(), rng=0)
        with pytest.raises(ValueError):
            agent.update()

    def test_ready_to_update_threshold(self, rng):
        agent = PPOAgent(4, 2, config=fast_config(min_update_batch=5), rng=0)
        for i in range(3):
            obs = rng.normal(size=4)
            a, lp, v = agent.act(obs)
            agent.store(obs, a, 0.0, v, lp, done=False)
        assert not agent.ready_to_update()
        for i in range(2):
            obs = rng.normal(size=4)
            a, lp, v = agent.act(obs)
            agent.store(obs, a, 0.0, v, lp, done=False)
        assert agent.ready_to_update()

    def test_lr_decays_on_schedule(self, rng):
        agent = PPOAgent(3, 1, config=fast_config(lr_decay_every=1, lr_decay=0.5), rng=0)
        initial = agent.actor_opt.lr
        obs = rng.normal(size=3)
        a, lp, v = agent.act(obs)
        agent.store(obs, a, 1.0, v, lp, done=True)
        agent.update()
        assert agent.actor_opt.lr == pytest.approx(initial * 0.5)

    def test_obs_normalization_optional(self, rng):
        agent = PPOAgent(3, 1, config=fast_config(normalize_obs=False), rng=0)
        assert agent.obs_stat is None
        agent.act(rng.normal(size=3))  # must not crash

    def test_deterministic_act(self, rng):
        agent = PPOAgent(3, 1, config=fast_config(), rng=0)
        obs = rng.normal(size=3)
        a1, _, _ = agent.act(obs, deterministic=True)
        a2, _, _ = agent.act(obs, deterministic=True)
        np.testing.assert_allclose(a1, a2)


class TestLearning:
    def test_learns_continuous_bandit(self):
        """Reward −(a−2)²: the policy mean must move toward 2."""
        agent = PPOAgent(3, 1, config=fast_config(), rng=0)
        obs = np.array([0.5, -0.2, 1.0])
        for _episode in range(50):
            for step in range(16):
                a, lp, v = agent.act(obs)
                reward = -((a[0] - 2.0) ** 2)
                agent.store(obs, a, reward, v, lp, done=(step == 15))
            agent.update()
        mean, _ = agent.policy.act(agent._normalize(obs), deterministic=True)
        assert abs(mean[0] - 2.0) < 0.6

    def test_state_dependent_bandit(self):
        """Optimal action flips sign with the observation."""
        rng = np.random.default_rng(1)
        agent = PPOAgent(1, 1, config=fast_config(), rng=0)
        for _episode in range(80):
            for step in range(16):
                target = rng.choice([-1.0, 1.0])
                obs = np.array([target])
                a, lp, v = agent.act(obs)
                reward = -((a[0] - target) ** 2)
                agent.store(obs, a, reward, v, lp, done=(step == 15))
            agent.update()
        pos, _ = agent.policy.act(agent._normalize(np.array([1.0])), deterministic=True)
        neg, _ = agent.policy.act(agent._normalize(np.array([-1.0])), deterministic=True)
        assert pos[0] > neg[0] + 0.5


class TestConfigValidation:
    def test_invalid(self):
        with pytest.raises(ValueError):
            PPOConfig(actor_lr=0.0)
        with pytest.raises(ValueError):
            PPOConfig(gamma=1.5)
        with pytest.raises(ValueError):
            PPOConfig(clip_ratio=0.0)
        with pytest.raises(ValueError):
            PPOConfig(lr_decay=0.0)
