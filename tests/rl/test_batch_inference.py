"""Batched policy inference and per-replica staging (vectorized rollouts).

``act_batch`` must reproduce ``act`` bit for bit on an M = 1 batch, and a
staged-then-flushed trajectory must land in the rollout buffer exactly as
sequential ``store`` calls would.
"""

import numpy as np
import pytest

from repro.rl import PPOAgent, PPOConfig


def make_agent(seed=0, obs_dim=6, act_dim=3, **cfg):
    return PPOAgent(obs_dim, act_dim, PPOConfig(**cfg), rng=seed)


class TestActBatch:
    def test_single_row_matches_act_bitwise(self):
        a = make_agent(seed=7)
        b = make_agent(seed=7)
        rng = np.random.default_rng(3)
        for _ in range(20):
            obs = rng.normal(size=6)
            act_a, logp_a, val_a = a.act(obs)
            acts, logps, vals, norm = b.act_batch(obs.reshape(1, -1))
            np.testing.assert_array_equal(acts[0], act_a)
            assert logps[0] == logp_a
            assert vals[0] == val_a
            # normalizer state advanced identically
            np.testing.assert_array_equal(a.obs_stat.mean, b.obs_stat.mean)
            np.testing.assert_array_equal(a.obs_stat.var, b.obs_stat.var)

    def test_deterministic_single_row_matches(self):
        a = make_agent(seed=7)
        b = make_agent(seed=7)
        obs = np.linspace(-1, 1, 6)
        act_a, logp_a, val_a = a.act(obs, deterministic=True)
        acts, logps, vals, _ = b.act_batch(
            obs.reshape(1, -1), deterministic=True
        )
        np.testing.assert_array_equal(acts[0], act_a)
        assert logps[0] == logp_a
        assert vals[0] == val_a

    def test_batch_shapes(self):
        agent = make_agent(seed=1)
        obs = np.random.default_rng(0).normal(size=(4, 6))
        acts, logps, vals, norm = agent.act_batch(obs)
        assert acts.shape == (4, 3)
        assert logps.shape == (4,)
        assert vals.shape == (4,)
        assert norm.shape == (4, 6)
        assert np.all(np.isfinite(acts))

    def test_batch_rows_use_distinct_noise(self):
        agent = make_agent(seed=1)
        obs = np.tile(np.linspace(-1, 1, 6), (4, 1))
        acts, _, _, _ = agent.act_batch(obs)
        # Same observation in every row, but each row draws its own
        # Gaussian noise: stochastic actions must differ.
        assert len({tuple(row) for row in acts}) == 4


class TestStaging:
    def test_staged_flush_matches_sequential_store(self):
        a = make_agent(seed=5)
        b = make_agent(seed=5)
        rng = np.random.default_rng(11)
        b.begin_staging(1)
        for t in range(8):
            obs = rng.normal(size=6)
            done = t == 7
            act_a, logp_a, val_a = a.act(obs)
            a.store(obs, act_a, 0.5 * t, val_a, logp_a, done)
            acts, logps, vals, norm = b.act_batch(obs.reshape(1, -1))
            b.stage(0, norm[0], acts[0], 0.5 * t, vals[0], logps[0], done)
        assert len(b.buffer) == 0  # nothing enters the buffer until flush
        b.flush_staged(0)
        assert len(a.buffer) == len(b.buffer) == 8

        batch_a = a.buffer.compute(last_value=0.0)
        batch_b = b.buffer.compute(last_value=0.0)
        np.testing.assert_array_equal(batch_a.obs, batch_b.obs)
        np.testing.assert_array_equal(batch_a.actions, batch_b.actions)
        np.testing.assert_array_equal(batch_a.log_probs, batch_b.log_probs)
        np.testing.assert_array_equal(batch_a.advantages, batch_b.advantages)
        np.testing.assert_array_equal(batch_a.returns, batch_b.returns)

    def test_replicas_flush_contiguously(self):
        agent = make_agent(seed=2)
        agent.begin_staging(2)
        obs = np.zeros((2, 6))
        for t in range(3):
            acts, logps, vals, norm = agent.act_batch(obs)
            for r in range(2):
                agent.stage(
                    r, norm[r], acts[r], float(r), vals[r], logps[r], t == 2
                )
        agent.flush_staged(1)
        agent.flush_staged(0)
        batch = agent.buffer.compute(last_value=0.0)
        assert len(batch) == 6

    def test_flush_clears_staging(self):
        agent = make_agent(seed=2)
        agent.begin_staging(1)
        agent.stage(0, np.zeros(6), np.zeros(3), 1.0, 0.0, 0.0, True)
        agent.flush_staged(0)
        agent.flush_staged(0)  # idempotent: nothing left to move
        assert len(agent.buffer) == 1


class TestComputeValuesSkip:
    """Eval rollouts skip the critic forward; actions must not notice."""

    def test_act_without_values_matches_bitwise(self):
        a = make_agent(seed=9)
        b = make_agent(seed=9)
        rng = np.random.default_rng(4)
        for _ in range(10):
            obs = rng.normal(size=6)
            act_a, logp_a, _ = a.act(obs)
            act_b, logp_b, val_b = b.act(obs, compute_values=False)
            assert val_b is None
            np.testing.assert_array_equal(act_b, act_a)
            assert logp_b == logp_a

    def test_act_batch_without_values_matches_bitwise(self):
        a = make_agent(seed=9)
        b = make_agent(seed=9)
        obs = np.random.default_rng(5).normal(size=(4, 6))
        acts_a, logps_a, _, norm_a = a.act_batch(obs)
        acts_b, logps_b, vals_b, norm_b = b.act_batch(obs, compute_values=False)
        assert vals_b is None
        np.testing.assert_array_equal(acts_b, acts_a)
        np.testing.assert_array_equal(logps_b, logps_a)
        np.testing.assert_array_equal(norm_b, norm_a)


class TestValueNetworkBatchIdentity:
    def test_single_value_matches_batch_row(self):
        agent = make_agent(seed=3)
        rng = np.random.default_rng(6)
        for _ in range(5):
            obs = rng.normal(size=6)
            single = agent.value_net.value(obs)
            batch = agent.value_net.values(obs.reshape(1, -1))
            assert single == batch[0]
