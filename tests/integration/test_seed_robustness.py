"""The headline comparison must not be a one-seed fluke."""

import numpy as np
import pytest

from repro.core import build_environment
from repro.experiments import make_mechanism
from repro.experiments.runner import evaluate_mechanism, train_mechanism


def utilities_for(name, seed, budget=25.0, episodes=60):
    build = build_environment(
        task_name="mnist", n_nodes=5, budget=budget,
        accuracy_mode="surrogate", seed=seed, max_rounds=200,
    )
    mech = make_mechanism(name, build.env, rng=seed + 100, tier="quick")
    train_mechanism(build.env, mech, episodes)
    episodes_out = evaluate_mechanism(build.env, mech, 3)
    return (
        float(np.mean([e.final_accuracy for e in episodes_out])),
        float(np.mean([e.mean_time_efficiency for e in episodes_out])),
    )


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chiron_beats_greedy_across_seeds(self, seed):
        """The key Fig.-4 ordering holds for every tested fleet draw."""
        chiron_acc, chiron_eff = utilities_for("chiron", seed)
        greedy_acc, greedy_eff = utilities_for("greedy", seed)
        assert chiron_acc > greedy_acc - 0.01, (
            f"seed {seed}: chiron {chiron_acc:.3f} vs greedy {greedy_acc:.3f}"
        )
        assert chiron_eff > greedy_eff - 0.05
