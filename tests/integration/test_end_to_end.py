"""Integration: the full stack wired together."""

import numpy as np
import pytest

from repro.baselines import RandomMechanism
from repro.core import ChironAgent, ChironConfig, build_environment
from repro.experiments.mechanisms import make_mechanism
from repro.experiments.results import EvaluationSummary
from repro.experiments.runner import evaluate_mechanism, run_episode, train_mechanism
from repro.rl import PPOConfig


def step_result(env, prices):
    """Step through the Gymnasium-style API, returning the StepResult."""
    *_, info = env.step(prices)
    return info["step_result"]



class TestRealModeEndToEnd:
    def test_chiron_episode_on_real_training(self):
        """Chiron drives actual numpy-CNN federated training."""
        build = build_environment(
            task_name="mnist",
            n_nodes=2,
            budget=3.0,
            accuracy_mode="real",
            seed=0,
            samples_per_node=15,
            test_size=20,
            max_rounds=6,
        )
        ppo = PPOConfig(actor_lr=1e-3, critic_lr=1e-3, hidden=(16, 16))
        agent = ChironAgent(build.env, ChironConfig(exterior=ppo, inner=ppo), rng=0)
        episode, _ = run_episode(build.env, agent)
        assert episode.rounds >= 1
        assert 0.0 < episode.final_accuracy <= 1.0
        assert episode.budget_spent <= 3.0 + 1e-9

    def test_real_accuracy_improves_with_rounds(self):
        build = build_environment(
            task_name="mnist",
            n_nodes=2,
            budget=50.0,
            accuracy_mode="real",
            seed=1,
            samples_per_node=40,
            test_size=60,
            max_rounds=3,
        )
        env = build.env
        env.reset()
        initial = env.accuracy
        prices = np.sqrt(env.price_floors * env.price_caps)
        while not env.done:
            result = step_result(env, prices)
        assert result.accuracy > initial + 0.3


class TestSurrogateFidelity:
    def test_real_and_surrogate_agree(self):
        """The calibrated curve tracks actual training within tolerance."""
        real_build = build_environment(
            task_name="mnist",
            n_nodes=5,
            budget=1e9,
            accuracy_mode="real",
            seed=0,
            samples_per_node=120,
            test_size=300,
        )
        real = real_build.learning
        surrogate = build_environment(
            task_name="mnist", n_nodes=5, budget=1e9, accuracy_mode="surrogate",
            seed=0, samples_per_node=120,
        ).learning

        real.reset()
        surrogate.reset()
        everyone = list(range(5))
        for round_index in range(4):
            a_real = real.step(everyone)
            a_surr = surrogate.step(everyone)
            assert a_surr == pytest.approx(a_real, abs=0.12), (
                f"round {round_index}: surrogate {a_surr:.3f} vs real {a_real:.3f}"
            )


class TestLearningImproves:
    def test_chiron_beats_random_after_training(self):
        build = build_environment(
            task_name="mnist", n_nodes=4, budget=25.0, accuracy_mode="surrogate",
            seed=0, max_rounds=200,
        )
        env = build.env
        chiron = make_mechanism("chiron", env, rng=1, tier="quick")
        train_mechanism(env, chiron, episodes=60)
        chiron_eval = EvaluationSummary.from_episodes(
            "chiron", evaluate_mechanism(env, chiron, episodes=5)
        )
        random_eval = EvaluationSummary.from_episodes(
            "random", evaluate_mechanism(env, RandomMechanism(env, rng=2), episodes=5)
        )
        assert chiron_eval.utility_mean > random_eval.utility_mean

    def test_inner_agent_raises_time_efficiency(self):
        """Deterministic-eval efficiency after training beats random pricing."""
        build = build_environment(
            task_name="mnist", n_nodes=5, budget=40.0, accuracy_mode="surrogate",
            seed=3, max_rounds=200,
        )
        env = build.env
        chiron = make_mechanism("chiron", env, rng=1, tier="quick")
        train_mechanism(env, chiron, episodes=80)
        chiron_eval = EvaluationSummary.from_episodes(
            "chiron", evaluate_mechanism(env, chiron, episodes=3)
        )
        random_eval = EvaluationSummary.from_episodes(
            "random", evaluate_mechanism(env, RandomMechanism(env, rng=5), episodes=5)
        )
        assert chiron_eval.efficiency_mean > random_eval.efficiency_mean


class TestDeterminism:
    def test_identical_seeds_identical_training(self):
        def run():
            build = build_environment(
                task_name="mnist", n_nodes=3, budget=15.0,
                accuracy_mode="surrogate", seed=4, max_rounds=100,
            )
            agent = make_mechanism("chiron", build.env, rng=9, tier="quick")
            history = train_mechanism(build.env, agent, episodes=5)
            return history.reward_curve

        np.testing.assert_allclose(run(), run())
