"""Integration: 100-node scale comparison and the paper hyper-parameter tier."""

import numpy as np
import pytest

from repro.core import build_environment
from repro.experiments import make_mechanism
from repro.experiments.results import EvaluationSummary
from repro.experiments.runner import evaluate_mechanism, train_mechanism


class TestHundredNodeScale:
    def test_chiron_competitive_at_scale(self):
        """At N=100 Chiron's factorized actions must stay in the healthy
        band; the flat agent's 100-D action space must not dominate it."""
        summaries = {}
        for name in ("chiron", "drl_single"):
            build = build_environment(
                task_name="mnist", n_nodes=100, budget=300.0,
                accuracy_mode="surrogate", seed=0, max_rounds=120,
            )
            mech = make_mechanism(name, build.env, rng=1, tier="quick")
            train_mechanism(build.env, mech, episodes=30)
            summaries[name] = EvaluationSummary.from_episodes(
                name, evaluate_mechanism(build.env, mech, 2)
            )
        assert summaries["chiron"].utility_mean > 1500.0
        assert (
            summaries["chiron"].utility_mean
            > summaries["drl_single"].utility_mean - 60.0
        )

    def test_state_dim_scales_linearly(self):
        small = build_environment(n_nodes=5, budget=10.0, seed=0).env
        large = build_environment(n_nodes=100, budget=10.0, seed=0).env
        # 3·N·L + 2 with L = 4.
        assert small.state_dim == 3 * 5 * 4 + 2
        assert large.state_dim == 3 * 100 * 4 + 2


class TestPaperTier:
    def test_paper_tier_trains(self):
        """The §VI-A hyper-parameter tier runs end-to-end (short smoke)."""
        build = build_environment(
            task_name="mnist", n_nodes=3, budget=10.0,
            accuracy_mode="surrogate", seed=0, max_rounds=60,
        )
        agent = make_mechanism("chiron", build.env, rng=1, tier="paper")
        # Strict per-episode updates (no batch accumulation) per the paper.
        assert agent.exterior.config.min_update_batch is None
        assert agent.exterior.config.actor_lr == pytest.approx(3e-5)
        history = train_mechanism(build.env, agent, episodes=3)
        assert len(history) == 3
        # Updates actually fired each episode (paper schedule).
        assert agent.exterior.episodes_seen == 3

    def test_lr_decay_schedule_runs(self):
        build = build_environment(
            task_name="mnist", n_nodes=3, budget=8.0,
            accuracy_mode="surrogate", seed=0, max_rounds=60,
        )
        agent = make_mechanism("chiron", build.env, rng=1, tier="paper")
        initial_lr = agent.exterior.actor_opt.lr
        train_mechanism(build.env, agent, episodes=21)
        # 5% decay fired once at episode 20.
        assert agent.exterior.actor_opt.lr == pytest.approx(initial_lr * 0.95)


class TestSeedAveragedSweep:
    def test_pooling(self):
        from repro.experiments.budget_sweep import run_budget_sweep

        result = run_budget_sweep(
            task="mnist", budgets=(10.0,), mechanisms=("fixed_price",),
            n_nodes=3, train_episodes=1, eval_episodes=2, seed=0,
            max_rounds=60, n_seeds=2,
        )
        assert result.summaries["fixed_price"][0].n_episodes == 4
