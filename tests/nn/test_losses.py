"""Loss module tests (values delegated to functional tests; here the API)."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import CrossEntropyLoss, MSELoss, NLLLoss


class TestCrossEntropyLoss:
    def test_scalar_output(self, rng):
        loss = CrossEntropyLoss()(rng.normal(size=(4, 3)), np.array([0, 1, 2, 0]))
        assert loss.shape == ()
        assert loss.item() > 0

    def test_perfect_prediction_near_zero(self):
        logits = np.full((2, 3), -100.0)
        logits[0, 1] = 100.0
        logits[1, 2] = 100.0
        loss = CrossEntropyLoss()(logits, np.array([1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-8)

    def test_uniform_prediction_is_log_c(self):
        loss = CrossEntropyLoss()(np.zeros((5, 10)), np.zeros(5, dtype=int))
        assert loss.item() == pytest.approx(np.log(10))

    def test_accepts_list_labels(self, rng):
        loss = CrossEntropyLoss()(rng.normal(size=(2, 3)), [0, 1])
        assert np.isfinite(loss.item())


class TestNLLLoss:
    def test_scalar(self, rng):
        from repro.autograd import functional as F

        log_probs = F.log_softmax(Tensor(rng.normal(size=(3, 4))), axis=1)
        loss = NLLLoss()(log_probs, np.array([0, 1, 2]))
        assert loss.shape == ()


class TestMSELoss:
    def test_value(self):
        loss = MSELoss()(np.array([1.0, 2.0]), np.array([1.0, 0.0]))
        assert loss.item() == pytest.approx(2.0)

    def test_gradient_flows(self):
        pred = Tensor([1.0, 2.0], requires_grad=True)
        MSELoss()(pred, np.zeros(2)).backward()
        np.testing.assert_allclose(pred.grad, [1.0, 2.0])

    def test_reprs(self):
        assert repr(CrossEntropyLoss()) == "CrossEntropyLoss()"
        assert repr(NLLLoss()) == "NLLLoss()"
        assert repr(MSELoss()) == "MSELoss()"
