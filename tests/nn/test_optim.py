"""Optimizer math against hand-computed references."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, Parameter
from repro.nn.optim import ExponentialLR, Optimizer


def make_param(values):
    p = Parameter(np.asarray(values, dtype=float))
    return p


class TestSGD:
    def test_plain_step(self):
        p = make_param([1.0, 2.0])
        p.grad = np.array([0.5, -0.5])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [0.95, 2.05])

    def test_missing_grad_is_zero(self):
        p = make_param([1.0])
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_momentum_accumulates(self):
        p = make_param([0.0])
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad = np.array([1.0])
        opt.step()  # v=1, p=-1
        p.grad = np.array([1.0])
        opt.step()  # v=1.5, p=-2.5
        np.testing.assert_allclose(p.data, [-2.5])

    def test_weight_decay(self):
        p = make_param([2.0])
        p.grad = np.array([0.0])
        SGD([p], lr=0.1, weight_decay=0.5).step()
        np.testing.assert_allclose(p.data, [2.0 - 0.1 * 0.5 * 2.0])

    def test_zero_grad(self):
        p = make_param([1.0])
        p.grad = np.array([1.0])
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert p.grad is None

    def test_validation(self):
        p = make_param([1.0])
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_first_step_is_lr_sized(self):
        # With bias correction, the first Adam step ≈ lr * sign(grad).
        p = make_param([0.0])
        p.grad = np.array([3.0])
        Adam([p], lr=0.01).step()
        np.testing.assert_allclose(p.data, [-0.01], atol=1e-6)

    def test_matches_reference_impl(self, rng):
        values = rng.normal(size=4)
        grads = [rng.normal(size=4) for _ in range(5)]
        p = make_param(values.copy())
        opt = Adam([p], lr=0.05, betas=(0.9, 0.999), eps=1e-8)

        # Reference
        ref = values.copy()
        m = np.zeros(4)
        v = np.zeros(4)
        for t, g in enumerate(grads, start=1):
            m = 0.9 * m + 0.1 * g
            v = 0.999 * v + 0.001 * g**2
            m_hat = m / (1 - 0.9**t)
            v_hat = v / (1 - 0.999**t)
            ref -= 0.05 * m_hat / (np.sqrt(v_hat) + 1e-8)

        for g in grads:
            p.grad = g.copy()
            opt.step()
        np.testing.assert_allclose(p.data, ref, atol=1e-12)

    def test_weight_decay(self):
        p = make_param([1.0])
        p.grad = np.array([0.0])
        Adam([p], lr=0.1, weight_decay=1.0).step()
        assert p.data[0] < 1.0

    def test_validation(self):
        p = make_param([1.0])
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, betas=(1.0, 0.999))
        with pytest.raises(ValueError):
            Adam([p], lr=0.1, eps=0.0)


class TestSetLr:
    def test_set_lr(self):
        p = make_param([1.0])
        opt = SGD([p], lr=0.1)
        opt.set_lr(0.01)
        assert opt.lr == 0.01
        with pytest.raises(ValueError):
            opt.set_lr(-1.0)


class TestExponentialLR:
    def test_decays_every_n(self):
        p = make_param([1.0])
        opt = SGD([p], lr=1.0)
        sched = ExponentialLR(opt, gamma=0.5, every=2)
        sched.step()
        assert opt.lr == 1.0
        sched.step()
        assert opt.lr == 0.5
        sched.step()
        sched.step()
        assert opt.lr == 0.25

    def test_paper_schedule(self):
        # 5% decay every 20 episodes (§VI-A).
        p = make_param([1.0])
        opt = SGD([p], lr=3e-5)
        sched = ExponentialLR(opt, gamma=0.95, every=20)
        for _ in range(40):
            sched.step()
        assert opt.lr == pytest.approx(3e-5 * 0.95**2)

    def test_validation(self):
        p = make_param([1.0])
        opt = SGD([p], lr=1.0)
        with pytest.raises(ValueError):
            ExponentialLR(opt, gamma=0.0)
        with pytest.raises(ValueError):
            ExponentialLR(opt, gamma=0.5, every=0)
