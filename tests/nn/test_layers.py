"""Layer behaviour: shapes, values, modes, validation."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    LogSoftmax,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)


class TestLinear:
    def test_forward_matches_matmul(self, rng):
        layer = Linear(4, 3, rng=0)
        x = rng.normal(size=(5, 4))
        out = layer(x)
        np.testing.assert_allclose(
            out.data, x @ layer.weight.data.T + layer.bias.data
        )

    def test_no_bias(self):
        layer = Linear(4, 3, bias=False, rng=0)
        assert layer.bias is None
        assert layer.num_parameters() == 12

    def test_input_dim_check(self):
        with pytest.raises(ValueError):
            Linear(4, 3, rng=0)(np.zeros((2, 5)))

    def test_seeded_determinism(self):
        a, b = Linear(4, 3, rng=42), Linear(4, 3, rng=42)
        np.testing.assert_allclose(a.weight.data, b.weight.data)

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            Linear(0, 3)
        with pytest.raises(ValueError):
            Linear(3, -1)

    def test_repr(self):
        assert "Linear" in repr(Linear(2, 3, rng=0))


class TestConv2dLayer:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, kernel_size=3, padding=1, rng=0)
        out = layer(rng.normal(size=(2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_strided_shape(self, rng):
        layer = Conv2d(1, 4, kernel_size=3, stride=2, rng=0)
        out = layer(rng.normal(size=(1, 1, 9, 9)))
        assert out.shape == (1, 4, 4, 4)

    def test_parameter_count(self):
        layer = Conv2d(3, 8, kernel_size=5, rng=0)
        assert layer.num_parameters() == 8 * 3 * 25 + 8

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Conv2d(0, 3, 3)
        with pytest.raises(ValueError):
            Conv2d(3, 3, 3, stride=0)
        with pytest.raises(ValueError):
            Conv2d(3, 3, 3, padding=-1)


class TestPoolingLayers:
    def test_max_default_stride(self, rng):
        out = MaxPool2d(2)(rng.normal(size=(1, 2, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_avg(self, rng):
        out = AvgPool2d(2)(rng.normal(size=(1, 2, 8, 8)))
        assert out.shape == (1, 2, 4, 4)

    def test_custom_stride(self, rng):
        out = MaxPool2d(3, stride=2)(rng.normal(size=(1, 1, 7, 7)))
        assert out.shape == (1, 1, 3, 3)


class TestActivations:
    @pytest.mark.parametrize(
        "layer,fn",
        [
            (ReLU(), lambda x: np.maximum(x, 0)),
            (Tanh(), np.tanh),
            (Sigmoid(), lambda x: 1 / (1 + np.exp(-x))),
        ],
    )
    def test_values(self, layer, fn, rng):
        x = rng.normal(size=(3, 4))
        np.testing.assert_allclose(layer(x).data, fn(x), atol=1e-12)

    def test_softmax_layer(self, rng):
        out = Softmax(axis=1)(rng.normal(size=(3, 5)))
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(3))

    def test_log_softmax_layer(self, rng):
        x = rng.normal(size=(3, 5))
        out = LogSoftmax(axis=1)(x)
        np.testing.assert_allclose(np.exp(out.data).sum(axis=1), np.ones(3))

    def test_activations_have_no_parameters(self):
        for layer in (ReLU(), Tanh(), Sigmoid(), Softmax(), LogSoftmax()):
            assert layer.num_parameters() == 0


class TestDropout:
    def test_eval_is_identity(self, rng):
        layer = Dropout(0.5, rng=0).eval()
        x = rng.normal(size=(10, 10))
        np.testing.assert_allclose(layer(x).data, x)

    def test_train_zeroes_and_scales(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((100, 100))
        out = layer(x).data
        kept = out[out != 0]
        np.testing.assert_allclose(kept, 2.0)  # inverted dropout scaling
        assert 0.3 < (out == 0).mean() < 0.7

    def test_p_zero_is_identity_in_train(self, rng):
        layer = Dropout(0.0, rng=0)
        x = rng.normal(size=(5, 5))
        np.testing.assert_allclose(layer(x).data, x)

    def test_expected_value_preserved(self):
        layer = Dropout(0.3, rng=0)
        x = np.ones((200, 200))
        assert layer(x).data.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
        with pytest.raises(ValueError):
            Dropout(-0.1)


class TestFlatten:
    def test_default(self, rng):
        out = Flatten()(rng.normal(size=(2, 3, 4, 5)))
        assert out.shape == (2, 60)

    def test_start_dim(self, rng):
        out = Flatten(start_dim=2)(rng.normal(size=(2, 3, 4, 5)))
        assert out.shape == (2, 3, 20)


class TestSequential:
    def test_chains(self, rng):
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        out = model(rng.normal(size=(3, 4)))
        assert out.shape == (3, 2)

    def test_len_iter_getitem(self):
        model = Sequential(Linear(2, 2, rng=0), ReLU())
        assert len(model) == 2
        assert isinstance(model[1], ReLU)
        assert isinstance(model[-1], ReLU)
        assert [type(m).__name__ for m in model] == ["Linear", "ReLU"]

    def test_index_error(self):
        model = Sequential(ReLU())
        with pytest.raises(IndexError):
            model[3]

    def test_rejects_non_module(self):
        with pytest.raises(TypeError):
            Sequential(lambda x: x)

    def test_parameters_registered(self):
        model = Sequential(Linear(2, 3, rng=0), Linear(3, 1, rng=1))
        assert model.num_parameters() == (6 + 3) + (3 + 1)
