"""Weight initialization tests."""

import numpy as np
import pytest

from repro.nn import init


class TestFans:
    def test_linear_layout(self):
        fan_in, fan_out = init._fan_in_out((8, 4))
        assert (fan_in, fan_out) == (4, 8)

    def test_conv_layout(self):
        fan_in, fan_out = init._fan_in_out((16, 3, 5, 5))
        assert (fan_in, fan_out) == (3 * 25, 16 * 25)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            init._fan_in_out((5,))


class TestDistributions:
    def test_uniform_bounds(self):
        w = init.uniform((1000,), -0.5, 0.5, rng=0)
        assert w.min() >= -0.5 and w.max() < 0.5

    def test_normal_std(self):
        w = init.normal((20000,), std=0.1, rng=0)
        assert w.std() == pytest.approx(0.1, rel=0.05)

    def test_zeros(self):
        np.testing.assert_allclose(init.zeros((3, 3)), 0.0)

    def test_kaiming_bound(self):
        shape = (64, 16)
        w = init.kaiming_uniform(shape, rng=0)
        gain = np.sqrt(2.0 / (1.0 + 5.0))
        bound = gain * np.sqrt(3.0 / 16)
        assert np.abs(w).max() <= bound

    def test_xavier_bound(self):
        shape = (10, 30)
        w = init.xavier_uniform(shape, rng=0)
        bound = np.sqrt(6.0 / 40)
        assert np.abs(w).max() <= bound

    def test_bias_uniform_bound(self):
        b = init.bias_uniform((8, 16), 8, rng=0)
        assert np.abs(b).max() <= 1.0 / 4.0

    def test_determinism(self):
        np.testing.assert_allclose(
            init.kaiming_uniform((4, 4), rng=3), init.kaiming_uniform((4, 4), rng=3)
        )


class TestOrthogonal:
    def test_square_orthogonal(self):
        w = init.orthogonal((6, 6), rng=0)
        np.testing.assert_allclose(w @ w.T, np.eye(6), atol=1e-10)

    def test_tall_columns_orthonormal(self):
        w = init.orthogonal((8, 3), rng=0)
        np.testing.assert_allclose(w.T @ w, np.eye(3), atol=1e-10)

    def test_gain(self):
        w = init.orthogonal((4, 4), rng=0, gain=2.0)
        np.testing.assert_allclose(w @ w.T, 4.0 * np.eye(4), atol=1e-10)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            init.orthogonal((2, 3, 4))
