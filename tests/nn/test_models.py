"""Model zoo: the paper's exact parameter counts and shapes."""

import numpy as np
import pytest

from repro.nn import MLP, CrossEntropyLoss, LeNet5, McMahanCNN, SGD, build_model, count_parameters


class TestMcMahanCNN:
    def test_exact_parameter_count(self):
        # §VI-A: "a total of 21,840 trainable parameters".
        model = McMahanCNN(rng=0)
        assert count_parameters(model) == 21_840 == McMahanCNN.NUM_PARAMETERS

    def test_forward_shape(self, rng):
        model = McMahanCNN(rng=0)
        out = model(rng.normal(size=(3, 1, 28, 28)))
        assert out.shape == (3, 10)

    def test_rejects_wrong_geometry(self, rng):
        model = McMahanCNN(rng=0)
        with pytest.raises(ValueError):
            model(rng.normal(size=(3, 3, 28, 28)))
        with pytest.raises(ValueError):
            model(rng.normal(size=(3, 1, 32, 32)))

    def test_deterministic_init(self):
        a, b = McMahanCNN(rng=7), McMahanCNN(rng=7)
        np.testing.assert_allclose(a.flat_parameters(), b.flat_parameters())

    def test_trains_one_step(self, rng):
        model = McMahanCNN(rng=0)
        before = model.flat_parameters()
        x = rng.normal(size=(4, 1, 28, 28))
        y = np.array([0, 1, 2, 3])
        loss = CrossEntropyLoss()(model(x), y)
        loss.backward()
        SGD(model.parameters(), lr=0.1).step()
        assert not np.allclose(model.flat_parameters(), before)


class TestLeNet5:
    def test_exact_parameter_count(self):
        # §VI-A: "a total of 62,006 trainable parameters".
        model = LeNet5(rng=0)
        assert count_parameters(model) == 62_006 == LeNet5.NUM_PARAMETERS

    def test_forward_shape(self, rng):
        model = LeNet5(rng=0)
        out = model(rng.normal(size=(2, 3, 32, 32)))
        assert out.shape == (2, 10)

    def test_rejects_wrong_geometry(self, rng):
        with pytest.raises(ValueError):
            LeNet5(rng=0)(rng.normal(size=(2, 1, 28, 28)))


class TestMLP:
    def test_shapes(self, rng):
        model = MLP(6, [16, 8], 3, rng=0)
        assert model(rng.normal(size=(5, 6))).shape == (5, 3)

    def test_tanh_variant(self, rng):
        model = MLP(4, [8], 2, activation="tanh", rng=0)
        assert model(rng.normal(size=(2, 4))).shape == (2, 2)

    def test_bad_activation(self):
        with pytest.raises(ValueError):
            MLP(4, [8], 2, activation="gelu")

    def test_no_hidden(self, rng):
        model = MLP(4, [], 2, rng=0)
        assert model(rng.normal(size=(2, 4))).shape == (2, 2)
        assert model.num_parameters() == 4 * 2 + 2


class TestRegistry:
    def test_builds_both(self):
        assert isinstance(build_model("mcmahan_cnn", rng=0), McMahanCNN)
        assert isinstance(build_model("lenet5", rng=0), LeNet5)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("resnet50")

    def test_custom_classes(self, rng):
        model = build_model("mcmahan_cnn", num_classes=7, rng=0)
        assert model(rng.normal(size=(1, 1, 28, 28))).shape == (1, 7)
