"""Hypothesis property tests for optimizers on convex quadratics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor
from repro.nn import Adam, Parameter, SGD


def quadratic_loss(param, center):
    """f(w) = ||w − c||², minimized at c."""
    diff = param - Tensor(center)
    return (diff * diff).sum()


@given(
    start=st.lists(st.floats(-5, 5), min_size=2, max_size=4),
    center_shift=st.floats(-3, 3),
)
@settings(max_examples=40, deadline=None)
def test_sgd_descends_quadratic(start, center_shift):
    """Plain SGD with a safe step monotonically decreases a quadratic."""
    center = np.asarray(start) + center_shift
    param = Parameter(np.asarray(start, dtype=float))
    opt = SGD([param], lr=0.1)  # safe for curvature 2: lr < 1/2·2
    previous = float(quadratic_loss(param, center).item())
    for _ in range(20):
        opt.zero_grad()
        loss = quadratic_loss(param, center)
        loss.backward()
        opt.step()
        current = float(quadratic_loss(param, center).item())
        assert current <= previous + 1e-9
        previous = current


@given(
    start=st.lists(st.floats(-5, 5), min_size=2, max_size=4),
    lr=st.floats(0.01, 0.3),
)
@settings(max_examples=30, deadline=None)
def test_adam_step_bounded_by_lr(start, lr):
    """Each Adam step moves every coordinate by at most ≈lr (its invariant)."""
    param = Parameter(np.asarray(start, dtype=float))
    opt = Adam([param], lr=lr)
    rng = np.random.default_rng(0)
    for _ in range(5):
        before = param.data.copy()
        param.grad = rng.normal(size=param.data.shape) * 100.0
        opt.step()
        step = np.abs(param.data - before)
        assert np.all(step <= lr * 1.2 + 1e-12)


@given(start=st.lists(st.floats(-4, 4), min_size=2, max_size=3))
@settings(max_examples=30, deadline=None)
def test_adam_converges_to_minimum(start):
    center = np.zeros(len(start))
    param = Parameter(np.asarray(start, dtype=float))
    opt = Adam([param], lr=0.2)
    for _ in range(300):
        opt.zero_grad()
        quadratic_loss(param, center).backward()
        opt.step()
    np.testing.assert_allclose(param.data, center, atol=0.05)


@given(
    momentum=st.floats(0.0, 0.9),
    start=st.floats(-5, 5).filter(lambda v: abs(v) > 0.1),
)
@settings(max_examples=30, deadline=None)
def test_sgd_momentum_still_converges_on_quadratic(momentum, start):
    param = Parameter(np.array([start]))
    opt = SGD([param], lr=0.05, momentum=momentum)
    for _ in range(400):
        opt.zero_grad()
        quadratic_loss(param, np.zeros(1)).backward()
        opt.step()
    assert abs(param.data[0]) < 0.05
