"""End-to-end learning sanity: small networks must actually learn."""

import numpy as np
import pytest

from repro.autograd import no_grad
from repro.nn import MLP, Adam, CrossEntropyLoss, MSELoss, SGD


class TestRegression:
    def test_linear_regression_converges(self, rng):
        # y = Xw + b, recoverable by an MLP with no hidden layer.
        w_true = np.array([2.0, -1.0, 0.5])
        x = rng.normal(size=(200, 3))
        y = x @ w_true + 0.3
        model = MLP(3, [], 1, rng=0)
        opt = SGD(model.parameters(), lr=0.1)
        loss_fn = MSELoss()
        for _ in range(200):
            opt.zero_grad()
            loss = loss_fn(model(x).reshape(-1), y)
            loss.backward()
            opt.step()
        assert loss.item() < 1e-3

    def test_adam_faster_than_plain_sgd_on_illconditioned(self, rng):
        x = rng.normal(size=(100, 2)) * np.array([10.0, 0.1])
        y = x @ np.array([1.0, 1.0])

        def final_loss(opt_cls, **kw):
            model = MLP(2, [], 1, rng=1)
            opt = opt_cls(model.parameters(), **kw)
            loss_fn = MSELoss()
            for _ in range(100):
                opt.zero_grad()
                loss = loss_fn(model(x).reshape(-1), y)
                loss.backward()
                opt.step()
            return loss.item()

        assert final_loss(Adam, lr=0.05) < final_loss(SGD, lr=0.001)


class TestClassification:
    def test_xor_learned_by_hidden_layer(self, rng):
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        y = np.array([0, 1, 1, 0])
        # Replicate for batch statistics.
        xs = np.tile(x, (25, 1)) + rng.normal(0, 0.05, size=(100, 2))
        ys = np.tile(y, 25)
        model = MLP(2, [16], 2, activation="tanh", rng=3)
        opt = Adam(model.parameters(), lr=0.02)
        loss_fn = CrossEntropyLoss()
        for _ in range(300):
            opt.zero_grad()
            loss_fn(model(xs), ys).backward()
            opt.step()
        with no_grad():
            preds = model(x).data.argmax(axis=1)
        np.testing.assert_array_equal(preds, y)
