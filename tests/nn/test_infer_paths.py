"""Per-layer and fused-Sequential ``infer`` ≡ ``forward`` bit-identity.

The rollout hot path never builds an autograd graph: policies and value
networks run :meth:`Sequential.infer`, which fuses ``Linear→Tanh`` /
``Linear→Sigmoid`` pairs over cached buffers and dispatches every other
layer to its own raw-numpy :meth:`Module.infer`.  These tests pin the
contract that makes that safe — every layer type's infer output equals
its autograd forward bit for bit, heterogeneous nets never ``TypeError``
on the fast path, and the buffer cache never leaks state across calls or
batch sizes.
"""

import numpy as np
import pytest

from repro.autograd.tensor import Tensor
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    LogSoftmax,
    MaxPool2d,
    ReLU,
    Sequential,
    Sigmoid,
    Softmax,
    Tanh,
)
from repro.rl.policy import _fast_forward


def forward_data(module, x):
    """The autograd forward pass as a raw array (reference path)."""
    return module(Tensor(np.asarray(x, dtype=np.float64))).data


# Layers whose infer path is stateless: (constructor, input shape).
STATELESS_CASES = [
    ("linear", lambda: Linear(7, 4, rng=np.random.default_rng(0)), (5, 7)),
    (
        "linear_no_bias",
        lambda: Linear(7, 4, bias=False, rng=np.random.default_rng(1)),
        (5, 7),
    ),
    ("tanh", Tanh, (5, 7)),
    ("relu", ReLU, (5, 7)),
    ("sigmoid", Sigmoid, (5, 7)),
    ("softmax", Softmax, (5, 7)),
    ("log_softmax", LogSoftmax, (5, 7)),
    ("flatten", Flatten, (5, 2, 3, 4)),
    (
        "conv2d",
        lambda: Conv2d(2, 3, 3, stride=1, padding=1, rng=np.random.default_rng(2)),
        (2, 2, 6, 6),
    ),
    ("max_pool", lambda: MaxPool2d(2), (2, 3, 6, 6)),
    ("avg_pool", lambda: AvgPool2d(2), (2, 3, 6, 6)),
]


@pytest.mark.parametrize(
    "factory,shape",
    [case[1:] for case in STATELESS_CASES],
    ids=[case[0] for case in STATELESS_CASES],
)
def test_layer_infer_matches_forward_bitwise(factory, shape):
    layer = factory()
    x = np.random.default_rng(42).normal(size=shape)
    expected = forward_data(layer, x)
    actual = layer.infer(x.copy())
    np.testing.assert_array_equal(actual, expected)


class TestDropoutInfer:
    def test_train_mode_consumes_rng_like_forward(self):
        a = Dropout(p=0.3, rng=np.random.default_rng(9))
        b = Dropout(p=0.3, rng=np.random.default_rng(9))
        x = np.random.default_rng(1).normal(size=(6, 5))
        np.testing.assert_array_equal(b.infer(x.copy()), forward_data(a, x))
        # Both paths advanced their mask streams identically: a second
        # pass must still agree.
        np.testing.assert_array_equal(b.infer(x.copy()), forward_data(a, x))

    def test_eval_mode_is_identity_without_copy(self):
        layer = Dropout(p=0.5).eval()
        x = np.random.default_rng(2).normal(size=(4, 3))
        assert layer.infer(x) is x


class TestSequentialInfer:
    def _mlp(self, act, seed):
        rng = np.random.default_rng(seed)
        return Sequential(
            Linear(6, 8, rng=rng),
            act(),
            Linear(8, 8, rng=rng),
            act(),
            Linear(8, 3, rng=rng),
        )

    @pytest.mark.parametrize("act", [Tanh, Sigmoid, ReLU], ids=["tanh", "sigmoid", "relu"])
    def test_mlp_matches_forward_bitwise(self, act):
        net = self._mlp(act, seed=0)
        x = np.random.default_rng(3).normal(size=(9, 6))
        np.testing.assert_array_equal(net.infer(x.copy()), forward_data(net, x))

    def test_heterogeneous_net_does_not_type_error(self):
        # Regression: the old isinstance-dispatch fast path raised
        # TypeError on anything but Linear/Tanh.  Every layer type must
        # now ride the fast path, fused or not.
        rng = np.random.default_rng(4)
        net = Sequential(
            Conv2d(1, 2, 3, rng=rng),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Linear(8, 6, rng=rng),
            Tanh(),
            Dropout(p=0.25, rng=np.random.default_rng(7)),
            Linear(6, 4, rng=rng),
            Softmax(),
        )
        twin_dropout_rng = np.random.default_rng(7)
        x = np.random.default_rng(5).normal(size=(3, 1, 6, 6))
        expected = forward_data(net, x)
        net.layer6._rng = twin_dropout_rng  # replay the same mask stream
        np.testing.assert_array_equal(_fast_forward(net, x.copy()), expected)

    def test_batch_size_changes_stay_bitwise(self):
        # The fused steps cache one buffer per batch size; switching
        # sizes (vectorized M=8 rollouts interleaved with M=1 probes)
        # must neither crash nor contaminate results.
        net = self._mlp(Tanh, seed=6)
        rng = np.random.default_rng(8)
        for m in (1, 8, 3, 8, 1):
            x = rng.normal(size=(m, 6))
            np.testing.assert_array_equal(net.infer(x.copy()), forward_data(net, x))

    def test_returned_array_survives_next_call(self):
        # The final step always allocates fresh: a returned output must
        # not be overwritten by the next infer() on the same net.
        net = self._mlp(Tanh, seed=10)
        rng = np.random.default_rng(11)
        x1, x2 = rng.normal(size=(2, 4, 6))
        out1 = net.infer(x1)
        saved = out1.copy()
        net.infer(x2)
        np.testing.assert_array_equal(out1, saved)

    def test_single_layer_passthrough_net_allocates_fresh(self):
        # Even a net whose last Linear feeds only pass-through layers
        # (Dropout in eval mode) must hand back an escape-safe array.
        net = Sequential(
            Linear(5, 5, rng=np.random.default_rng(12)), Dropout(p=0.5)
        ).eval()
        rng = np.random.default_rng(13)
        x1, x2 = rng.normal(size=(2, 3, 5))
        out1 = net.infer(x1)
        saved = out1.copy()
        net.infer(x2)
        np.testing.assert_array_equal(out1, saved)
