"""Module registration, state dicts, parameter flattening."""

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.nn import Linear, Module, Parameter, Sequential


class Branchy(Module):
    def __init__(self):
        super().__init__()
        self.weight = Parameter(np.ones((2, 2)))
        self.child = Linear(2, 3, rng=0)

    def forward(self, x):
        return self.child(Tensor(x) @ self.weight)


class TestRegistration:
    def test_named_parameters_depth_first(self):
        m = Branchy()
        names = [n for n, _ in m.named_parameters()]
        assert names == ["weight", "child.weight", "child.bias"]

    def test_num_parameters(self):
        m = Branchy()
        assert m.num_parameters() == 4 + 6 + 3

    def test_reassignment_replaces(self):
        m = Branchy()
        m.child = Linear(2, 5, rng=1)
        names = [n for n, _ in m.named_parameters()]
        assert names == ["weight", "child.weight", "child.bias"]
        assert dict(m.named_parameters())["child.weight"].shape == (5, 2)

    def test_attribute_before_init_raises(self):
        class Broken(Module):
            def __init__(self):
                self.early = 1  # no super().__init__()

        with pytest.raises(AttributeError):
            Broken()

    def test_forward_not_implemented(self):
        class Empty(Module):
            pass

        with pytest.raises(NotImplementedError):
            Empty()(np.zeros(2))


class TestModes:
    def test_train_eval_recursive(self):
        m = Branchy()
        assert m.training and m.child.training
        m.eval()
        assert not m.training and not m.child.training
        m.train()
        assert m.training and m.child.training


class TestStateDict:
    def test_roundtrip(self):
        m = Branchy()
        state = m.state_dict()
        for p in m.parameters():
            p.data += 1.0
        m.load_state_dict(state)
        for name, p in m.named_parameters():
            np.testing.assert_allclose(p.data, state[name])

    def test_state_dict_is_copy(self):
        m = Branchy()
        state = m.state_dict()
        state["weight"] += 5.0
        assert not np.allclose(m.weight.data, state["weight"])

    def test_missing_key_raises(self):
        m = Branchy()
        state = m.state_dict()
        del state["weight"]
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_unexpected_key_raises(self):
        m = Branchy()
        state = m.state_dict()
        state["phantom"] = np.zeros(2)
        with pytest.raises(KeyError):
            m.load_state_dict(state)

    def test_shape_mismatch_raises(self):
        m = Branchy()
        state = m.state_dict()
        state["weight"] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            m.load_state_dict(state)


class TestFlatParameters:
    def test_roundtrip(self):
        m = Branchy()
        flat = m.flat_parameters()
        assert flat.shape == (m.num_parameters(),)
        for p in m.parameters():
            p.data *= 0.0
        m.load_flat_parameters(flat)
        np.testing.assert_allclose(m.flat_parameters(), flat)

    def test_wrong_size_raises(self):
        m = Branchy()
        with pytest.raises(ValueError):
            m.load_flat_parameters(np.zeros(3))


class TestZeroGrad:
    def test_clears_all(self):
        m = Branchy()
        out = m(np.ones((1, 2)))
        out.sum().backward()
        assert any(p.grad is not None for p in m.parameters())
        m.zero_grad()
        assert all(p.grad is None for p in m.parameters())


class TestParameter:
    def test_always_requires_grad(self):
        from repro.autograd import no_grad

        with no_grad():
            p = Parameter(np.ones(3))
        assert p.requires_grad

    def test_copy_checks_shape(self):
        p = Parameter(np.ones((2, 2)))
        with pytest.raises(ValueError):
            p.copy_(np.ones(3))

    def test_copy_in_place(self):
        p = Parameter(np.ones((2,)))
        original = p.data
        p.copy_(np.array([5.0, 6.0]))
        assert p.data is original
        np.testing.assert_allclose(p.data, [5.0, 6.0])
