"""Convolution and pooling: forward values vs a reference, exact gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, gradcheck


def _as_pair(value):
    return (value, value) if isinstance(value, int) else tuple(value)


def reference_conv2d(x, w, b, stride, padding):
    """Naive loop implementation as ground truth (int or (h, w) pairs)."""
    n, c_in, h, w_in = x.shape
    c_out, _, kh, kw = w.shape
    sh, sw = _as_pair(stride)
    ph, pw = _as_pair(padding)
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w_in + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for ni in range(n):
        for co in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = xp[ni, :, i * sh : i * sh + kh, j * sw : j * sw + kw]
                    out[ni, co, i, j] = (patch * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 2), (2, 0), (2, 1)])
    def test_matches_reference(self, stride, padding, rng):
        x = rng.normal(size=(2, 3, 9, 9))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        got = F.conv2d(
            Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding
        )
        expected = reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(got.data, expected, atol=1e-10)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        got = F.conv2d(Tensor(x), Tensor(w), None)
        expected = reference_conv2d(x, w, None, 1, 0)
        np.testing.assert_allclose(got.data, expected, atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 5, 5))), Tensor(np.zeros((2, 4, 3, 3))))

    def test_bad_input_ndim(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((3, 5, 5))), Tensor(np.zeros((2, 3, 3, 3))))

    def test_bad_bias_shape(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(
                Tensor(np.zeros((1, 1, 5, 5))),
                Tensor(np.zeros((2, 1, 3, 3))),
                Tensor(np.zeros(3)),
            )


class TestConv2dGradients:
    def test_gradcheck_all_inputs(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.2, requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert gradcheck(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            [x, w, b],
            atol=1e-5,
        )

    def test_gradcheck_strided(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 7, 7)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)) * 0.2, requires_grad=True)
        assert gradcheck(
            lambda x, w: F.conv2d(x, w, None, stride=2, padding=0),
            [x, w],
            atol=1e-5,
        )


class TestConv2dEdgeCases:
    """Asymmetric padding, stride > kernel, and 1×1 spatial extents."""

    @pytest.mark.parametrize("padding", [(2, 1), (0, 3), (1, 0)])
    def test_asymmetric_padding_matches_reference(self, padding, rng):
        x = rng.normal(size=(2, 2, 6, 7))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=(3,))
        got = F.conv2d(Tensor(x), Tensor(w), Tensor(b), stride=1, padding=padding)
        expected = reference_conv2d(x, w, b, 1, padding)
        np.testing.assert_allclose(got.data, expected, atol=1e-10)

    def test_asymmetric_padding_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 4)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)) * 0.2, requires_grad=True)
        b = Tensor(rng.normal(size=(2,)), requires_grad=True)
        assert gradcheck(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=(2, 1)),
            [x, w, b],
            atol=1e-5,
        )

    def test_stride_exceeds_kernel_matches_reference(self, rng):
        # Stride 3 with a 2x2 kernel: whole input columns/rows are never
        # touched, so their gradient must be exactly zero.
        x = rng.normal(size=(1, 2, 8, 8))
        w = rng.normal(size=(2, 2, 2, 2))
        got = F.conv2d(Tensor(x), Tensor(w), None, stride=3, padding=0)
        expected = reference_conv2d(x, w, None, 3, 0)
        np.testing.assert_allclose(got.data, expected, atol=1e-10)

    def test_stride_exceeds_kernel_gradcheck_and_dead_pixels(self, rng):
        x = Tensor(rng.normal(size=(1, 1, 7, 7)), requires_grad=True)
        w = Tensor(rng.normal(size=(1, 1, 2, 2)) * 0.3, requires_grad=True)
        assert gradcheck(
            lambda x, w: F.conv2d(x, w, None, stride=3, padding=0),
            [x, w],
            atol=1e-5,
        )
        x.zero_grad()
        F.conv2d(x, w, None, stride=3, padding=0).sum().backward()
        # Column/row index 2 falls between windows (windows cover 0-1, 3-4, 6);
        # the skipped pixels must receive exactly zero gradient.
        assert np.all(x.grad[:, :, 2, :] == 0.0)
        assert np.all(x.grad[:, :, :, 2] == 0.0)

    def test_asymmetric_stride_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 7, 9)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)) * 0.2, requires_grad=True)
        assert gradcheck(
            lambda x, w: F.conv2d(x, w, None, stride=(2, 3), padding=(1, 2)),
            [x, w],
            atol=1e-5,
        )

    def test_1x1_spatial_input_matches_reference(self, rng):
        x = rng.normal(size=(2, 3, 1, 1))
        w = rng.normal(size=(4, 3, 1, 1))
        b = rng.normal(size=(4,))
        got = F.conv2d(Tensor(x), Tensor(w), Tensor(b))
        expected = reference_conv2d(x, w, b, 1, 0)
        np.testing.assert_allclose(got.data, expected, atol=1e-10)
        assert got.shape == (2, 4, 1, 1)

    def test_1x1_spatial_input_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 1, 1)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 3, 1, 1)) * 0.3, requires_grad=True)
        b = Tensor(rng.normal(size=(2,)), requires_grad=True)
        assert gradcheck(lambda x, w, b: F.conv2d(x, w, b), [x, w, b], atol=1e-5)

    def test_1x1_input_with_padding_and_3x3_kernel(self, rng):
        # Padding is the only thing making a 3x3 kernel fit a 1x1 image.
        x = Tensor(rng.normal(size=(1, 2, 1, 1)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)) * 0.2, requires_grad=True)
        got = F.conv2d(x, w, None, stride=1, padding=1)
        expected = reference_conv2d(x.data, w.data, None, 1, 1)
        np.testing.assert_allclose(got.data, expected, atol=1e-10)
        assert gradcheck(
            lambda x, w: F.conv2d(x, w, None, stride=1, padding=1),
            [x, w],
            atol=1e-5,
        )


class TestPoolingEdgeCases:
    def test_max_pool_stride_exceeds_kernel(self, rng):
        # kernel 2, stride 3: row/column 2 (mod 3) is skipped entirely.
        x = rng.normal(size=(1, 1, 8, 8))
        out = F.max_pool2d(Tensor(x), kernel=2, stride=3)
        assert out.shape == (1, 1, 3, 3)
        for i in range(3):
            for j in range(3):
                window = x[0, 0, 3 * i : 3 * i + 2, 3 * j : 3 * j + 2]
                assert out.data[0, 0, i, j] == window.max()

    def test_max_pool_stride_exceeds_kernel_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 7, 7)), requires_grad=True)
        assert gradcheck(
            lambda x: F.max_pool2d(x, kernel=2, stride=3), [x], atol=1e-5
        )
        x.zero_grad()
        F.max_pool2d(x, kernel=2, stride=3).sum().backward()
        assert np.all(x.grad[:, :, 2, :] == 0.0)

    def test_max_pool_1x1_spatial(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 1, 1)), requires_grad=True)
        out = F.max_pool2d(x, kernel=1)
        np.testing.assert_array_equal(out.data, x.data)
        assert gradcheck(lambda x: F.max_pool2d(x, 1), [x], atol=1e-5)

    def test_max_pool_asymmetric_kernel_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 6, 8)), requires_grad=True)
        out = F.max_pool2d(x, kernel=(2, 4))
        assert out.shape == (1, 2, 3, 2)
        assert gradcheck(lambda x: F.max_pool2d(x, (2, 4)), [x], atol=1e-5)

    def test_avg_pool_1x1_spatial_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 1, 1)), requires_grad=True)
        out = F.avg_pool2d(x, kernel=1)
        np.testing.assert_array_equal(out.data, x.data)
        assert gradcheck(lambda x: F.avg_pool2d(x, 1), [x])


class TestIm2col:
    def test_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        cols = F.im2col(x, kernel=(3, 3), stride=1, padding=0)
        assert cols.shape == (2, 3 * 9, 6 * 6)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        assert gradcheck(lambda x: F.im2col(x, (2, 2), 1, 1), [x], atol=1e-5)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            F.im2col(Tensor(np.zeros((2, 5, 5))), (2, 2))


class TestPooling:
    def test_max_pool_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[4.0]]]])

    def test_max_pool_matches_reference(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        out = F.max_pool2d(Tensor(x), 2)
        expected = x.reshape(2, 3, 4, 2, 4, 2).max(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected)

    def test_max_pool_overlapping(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        out = F.max_pool2d(Tensor(x), kernel=3, stride=2)
        assert out.shape == (1, 1, 2, 2)
        assert out.data[0, 0, 0, 0] == x[0, 0, :3, :3].max()

    def test_max_pool_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[[[1.0, 5.0], [3.0, 2.0]]]]), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, [[[[0.0, 1.0], [0.0, 0.0]]]])

    def test_max_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        assert gradcheck(lambda x: F.max_pool2d(x, 2), [x], atol=1e-5)

    def test_avg_pool_values(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        out = F.avg_pool2d(Tensor(x), 2)
        expected = x.reshape(2, 3, 3, 2, 3, 2).mean(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected)

    def test_avg_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        assert gradcheck(lambda x: F.avg_pool2d(x, 2), [x])

    def test_pool_rejects_3d(self):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(np.zeros((2, 5, 5))), 2)
        with pytest.raises(ValueError):
            F.avg_pool2d(Tensor(np.zeros((2, 5, 5))), 2)
