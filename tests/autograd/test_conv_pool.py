"""Convolution and pooling: forward values vs a reference, exact gradients."""

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F, gradcheck


def reference_conv2d(x, w, b, stride, padding):
    """Naive loop implementation as ground truth."""
    n, c_in, h, w_in = x.shape
    c_out, _, kh, kw = w.shape
    ph, pw = padding, padding
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    out_h = (h + 2 * ph - kh) // stride + 1
    out_w = (w_in + 2 * pw - kw) // stride + 1
    out = np.zeros((n, c_out, out_h, out_w))
    for ni in range(n):
        for co in range(c_out):
            for i in range(out_h):
                for j in range(out_w):
                    patch = xp[ni, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
                    out[ni, co, i, j] = (patch * w[co]).sum()
            if b is not None:
                out[ni, co] += b[co]
    return out


class TestConv2dForward:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 2), (2, 0), (2, 1)])
    def test_matches_reference(self, stride, padding, rng):
        x = rng.normal(size=(2, 3, 9, 9))
        w = rng.normal(size=(4, 3, 3, 3))
        b = rng.normal(size=(4,))
        got = F.conv2d(
            Tensor(x), Tensor(w), Tensor(b), stride=stride, padding=padding
        )
        expected = reference_conv2d(x, w, b, stride, padding)
        np.testing.assert_allclose(got.data, expected, atol=1e-10)

    def test_no_bias(self, rng):
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        got = F.conv2d(Tensor(x), Tensor(w), None)
        expected = reference_conv2d(x, w, None, 1, 0)
        np.testing.assert_allclose(got.data, expected, atol=1e-10)

    def test_channel_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((1, 3, 5, 5))), Tensor(np.zeros((2, 4, 3, 3))))

    def test_bad_input_ndim(self):
        with pytest.raises(ValueError):
            F.conv2d(Tensor(np.zeros((3, 5, 5))), Tensor(np.zeros((2, 3, 3, 3))))

    def test_bad_bias_shape(self, rng):
        with pytest.raises(ValueError):
            F.conv2d(
                Tensor(np.zeros((1, 1, 5, 5))),
                Tensor(np.zeros((2, 1, 3, 3))),
                Tensor(np.zeros(3)),
            )


class TestConv2dGradients:
    def test_gradcheck_all_inputs(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        w = Tensor(rng.normal(size=(3, 2, 3, 3)) * 0.2, requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        assert gradcheck(
            lambda x, w, b: F.conv2d(x, w, b, stride=1, padding=1),
            [x, w, b],
            atol=1e-5,
        )

    def test_gradcheck_strided(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 7, 7)), requires_grad=True)
        w = Tensor(rng.normal(size=(2, 2, 3, 3)) * 0.2, requires_grad=True)
        assert gradcheck(
            lambda x, w: F.conv2d(x, w, None, stride=2, padding=0),
            [x, w],
            atol=1e-5,
        )


class TestIm2col:
    def test_shape(self, rng):
        x = Tensor(rng.normal(size=(2, 3, 8, 8)))
        cols = F.im2col(x, kernel=(3, 3), stride=1, padding=0)
        assert cols.shape == (2, 3 * 9, 6 * 6)

    def test_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 5, 5)), requires_grad=True)
        assert gradcheck(lambda x: F.im2col(x, (2, 2), 1, 1), [x], atol=1e-5)

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            F.im2col(Tensor(np.zeros((2, 5, 5))), (2, 2))


class TestPooling:
    def test_max_pool_values(self):
        x = np.array([[[[1.0, 2.0], [3.0, 4.0]]]])
        out = F.max_pool2d(Tensor(x), 2)
        np.testing.assert_allclose(out.data, [[[[4.0]]]])

    def test_max_pool_matches_reference(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        out = F.max_pool2d(Tensor(x), 2)
        expected = x.reshape(2, 3, 4, 2, 4, 2).max(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected)

    def test_max_pool_overlapping(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        out = F.max_pool2d(Tensor(x), kernel=3, stride=2)
        assert out.shape == (1, 1, 2, 2)
        assert out.data[0, 0, 0, 0] == x[0, 0, :3, :3].max()

    def test_max_pool_gradient_routes_to_argmax(self):
        x = Tensor(np.array([[[[1.0, 5.0], [3.0, 2.0]]]]), requires_grad=True)
        F.max_pool2d(x, 2).sum().backward()
        np.testing.assert_allclose(x.grad, [[[[0.0, 1.0], [0.0, 0.0]]]])

    def test_max_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(2, 2, 6, 6)), requires_grad=True)
        assert gradcheck(lambda x: F.max_pool2d(x, 2), [x], atol=1e-5)

    def test_avg_pool_values(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        out = F.avg_pool2d(Tensor(x), 2)
        expected = x.reshape(2, 3, 3, 2, 3, 2).mean(axis=(3, 5))
        np.testing.assert_allclose(out.data, expected)

    def test_avg_pool_gradcheck(self, rng):
        x = Tensor(rng.normal(size=(1, 2, 4, 4)), requires_grad=True)
        assert gradcheck(lambda x: F.avg_pool2d(x, 2), [x])

    def test_pool_rejects_3d(self):
        with pytest.raises(ValueError):
            F.max_pool2d(Tensor(np.zeros((2, 5, 5))), 2)
        with pytest.raises(ValueError):
            F.avg_pool2d(Tensor(np.zeros((2, 5, 5))), 2)
