"""Hypothesis property tests for autograd invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.autograd import Tensor, functional as F


def finite_arrays(max_dims=2, max_side=5):
    return arrays(
        dtype=np.float64,
        shape=array_shapes(min_dims=1, max_dims=max_dims, max_side=max_side),
        elements=st.floats(-10, 10, allow_nan=False),
    )


@given(finite_arrays())
@settings(max_examples=50, deadline=None)
def test_sum_gradient_is_ones(data):
    t = Tensor(data, requires_grad=True)
    t.sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(data))


@given(finite_arrays(), st.floats(-5, 5, allow_nan=False))
@settings(max_examples=50, deadline=None)
def test_scalar_mul_gradient(data, c):
    t = Tensor(data, requires_grad=True)
    (t * c).sum().backward()
    np.testing.assert_allclose(t.grad, np.full_like(data, c))


@given(finite_arrays())
@settings(max_examples=50, deadline=None)
def test_linearity_of_backward(data):
    # grad of (2x + 3x) == grad of 5x
    a = Tensor(data, requires_grad=True)
    (a * 2 + a * 3).sum().backward()
    grad_split = a.grad.copy()
    b = Tensor(data, requires_grad=True)
    (b * 5).sum().backward()
    np.testing.assert_allclose(grad_split, b.grad, atol=1e-12)


@given(finite_arrays())
@settings(max_examples=50, deadline=None)
def test_exp_log_roundtrip_gradient(data):
    # d/dx log(exp(x)) = 1 everywhere.
    t = Tensor(data, requires_grad=True)
    t.exp().log().sum().backward()
    np.testing.assert_allclose(t.grad, np.ones_like(data), atol=1e-9)


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 4), st.integers(2, 6)),
        elements=st.floats(-30, 30, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_softmax_is_simplex(logits):
    probs = F.softmax(Tensor(logits), axis=1).data
    assert np.all(probs >= 0)
    np.testing.assert_allclose(probs.sum(axis=1), np.ones(logits.shape[0]), atol=1e-9)


@given(
    arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(1, 3), st.integers(2, 5)),
        elements=st.floats(-20, 20, allow_nan=False),
    )
)
@settings(max_examples=50, deadline=None)
def test_softmax_shift_invariance(logits):
    p1 = F.softmax(Tensor(logits), axis=1).data
    p2 = F.softmax(Tensor(logits + 100.0), axis=1).data
    np.testing.assert_allclose(p1, p2, atol=1e-9)


@given(finite_arrays(max_dims=2))
@settings(max_examples=50, deadline=None)
def test_tanh_bounded(data):
    out = Tensor(data).tanh().data
    assert np.all(out >= -1.0) and np.all(out <= 1.0)


@given(finite_arrays(max_dims=2))
@settings(max_examples=50, deadline=None)
def test_relu_idempotent(data):
    t = Tensor(data)
    once = t.relu().data
    twice = t.relu().relu().data
    np.testing.assert_allclose(once, twice)
