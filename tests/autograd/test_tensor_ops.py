"""Elementwise and arithmetic op tests for the autograd Tensor."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck, is_grad_enabled, no_grad, tensor


class TestConstruction:
    def test_from_list(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        assert t.shape == (2, 2)
        assert t.dtype == np.float64

    def test_from_scalar(self):
        t = Tensor(3.5)
        assert t.shape == ()
        assert t.item() == 3.5

    def test_from_tensor_shares_data(self):
        a = Tensor([1.0, 2.0])
        b = Tensor(a)
        assert b.data is a.data

    def test_tensor_helper(self):
        t = tensor([1.0], requires_grad=True)
        assert t.requires_grad

    def test_default_no_grad(self):
        assert not Tensor([1.0]).requires_grad

    def test_len_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert len(t) == 3
        assert t.size == 12
        assert t.ndim == 2

    def test_repr_mentions_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))


class TestArithmetic:
    def test_add_values(self):
        out = Tensor([1.0, 2.0]) + Tensor([3.0, 4.0])
        np.testing.assert_allclose(out.data, [4.0, 6.0])

    def test_radd_scalar(self):
        out = 2.0 + Tensor([1.0])
        np.testing.assert_allclose(out.data, [3.0])

    def test_sub_and_rsub(self):
        a = Tensor([5.0])
        np.testing.assert_allclose((a - 2.0).data, [3.0])
        np.testing.assert_allclose((7.0 - a).data, [2.0])

    def test_mul_div(self):
        a = Tensor([6.0])
        np.testing.assert_allclose((a * 2).data, [12.0])
        np.testing.assert_allclose((a / 3).data, [2.0])
        np.testing.assert_allclose((12.0 / a).data, [2.0])

    def test_neg(self):
        np.testing.assert_allclose((-Tensor([1.0, -2.0])).data, [-1.0, 2.0])

    def test_pow(self):
        np.testing.assert_allclose((Tensor([2.0]) ** 3).data, [8.0])

    def test_pow_rejects_tensor_exponent(self):
        with pytest.raises(TypeError):
            Tensor([2.0]) ** Tensor([3.0])

    def test_add_gradient(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, [1.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 1.0])

    def test_mul_gradient(self):
        a = Tensor([2.0], requires_grad=True)
        b = Tensor([5.0], requires_grad=True)
        (a * b).backward()
        np.testing.assert_allclose(a.grad, [5.0])
        np.testing.assert_allclose(b.grad, [2.0])

    def test_div_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(3,)) + 5.0, requires_grad=True)
        b = Tensor(rng.normal(size=(3,)) + 5.0, requires_grad=True)
        assert gradcheck(lambda a, b: a / b, [a, b])

    def test_grad_accumulates_on_reuse(self):
        a = Tensor([3.0], requires_grad=True)
        (a * a).backward()  # d(a^2)/da = 2a
        np.testing.assert_allclose(a.grad, [6.0])

    def test_zero_grad(self):
        a = Tensor([3.0], requires_grad=True)
        (a * 2).backward()
        a.zero_grad()
        assert a.grad is None


class TestBroadcasting:
    def test_row_plus_column(self, rng):
        a = Tensor(rng.normal(size=(3, 1)), requires_grad=True)
        b = Tensor(rng.normal(size=(1, 4)), requires_grad=True)
        assert gradcheck(lambda a, b: a + b, [a, b])

    def test_scalar_broadcast_grad(self):
        a = Tensor(2.0, requires_grad=True)
        b = Tensor(np.ones((2, 3)), requires_grad=True)
        (a * b).sum().backward()
        np.testing.assert_allclose(a.grad, 6.0)

    def test_mismatched_vector_grad(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4)), requires_grad=True)
        assert gradcheck(lambda a, b: a * b, [a, b])


class TestElementwise:
    @pytest.mark.parametrize(
        "fn",
        [
            lambda t: t.exp(),
            lambda t: t.tanh(),
            lambda t: t.sigmoid(),
            lambda t: t.relu(),
            lambda t: t.abs(),
        ],
    )
    def test_gradcheck(self, fn, rng):
        # Offset away from 0 so relu/abs kinks don't break finite differences.
        t = Tensor(rng.normal(size=(4, 3)) + 0.7, requires_grad=True)
        assert gradcheck(fn, [t])

    def test_log_gradcheck(self, rng):
        t = Tensor(rng.uniform(0.5, 3.0, size=(5,)), requires_grad=True)
        assert gradcheck(lambda t: t.log(), [t])

    def test_sqrt(self):
        t = Tensor([4.0, 9.0])
        np.testing.assert_allclose(t.sqrt().data, [2.0, 3.0])

    def test_relu_zeroes_negatives(self):
        np.testing.assert_allclose(
            Tensor([-1.0, 0.0, 2.0]).relu().data, [0.0, 0.0, 2.0]
        )

    def test_clip_values_and_grad(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        out = t.clip(-1.0, 1.0)
        np.testing.assert_allclose(out.data, [-1.0, 0.5, 1.0])
        out.sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 0.0])

    def test_maximum_minimum_values(self):
        a = Tensor([1.0, 5.0])
        b = Tensor([3.0, 2.0])
        np.testing.assert_allclose(a.maximum(b).data, [3.0, 5.0])
        np.testing.assert_allclose(a.minimum(b).data, [1.0, 2.0])

    def test_maximum_gradient_routing(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([3.0, 2.0], requires_grad=True)
        a.maximum(b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])


class TestBackwardSemantics:
    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()

    def test_backward_nonscalar_needs_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2).backward()

    def test_backward_seed_shape_checked(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        out = t * 2
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_backward_with_seed(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        (t * 3).backward(np.array([1.0, 10.0]))
        np.testing.assert_allclose(t.grad, [3.0, 30.0])

    def test_diamond_graph(self):
        # y = a*a + a*a: gradient must accumulate through both paths.
        a = Tensor([2.0], requires_grad=True)
        b = a * a
        (b + b).backward()
        np.testing.assert_allclose(a.grad, [8.0])

    def test_detach_cuts_graph(self):
        a = Tensor([2.0], requires_grad=True)
        d = (a * 2).detach()
        assert not d.requires_grad
        out = d * 3
        assert not out.requires_grad

    def test_no_grad_blocks_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        assert is_grad_enabled()
        with no_grad():
            assert not is_grad_enabled()
            with no_grad():
                assert not is_grad_enabled()
            assert not is_grad_enabled()
        assert is_grad_enabled()

    def test_deep_chain_no_recursion_error(self):
        # Topological sort is iterative; 5000-deep chains must not overflow.
        t = Tensor([1.0], requires_grad=True)
        out = t
        for _ in range(5000):
            out = out + 1.0
        out.backward()
        np.testing.assert_allclose(t.grad, [1.0])
