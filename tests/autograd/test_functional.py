"""Tests for repro.autograd.functional: softmax family, losses, one-hot."""

import numpy as np
import pytest
from scipy.special import log_softmax as scipy_log_softmax
from scipy.special import softmax as scipy_softmax

from repro.autograd import Tensor, functional as F, gradcheck


class TestSoftmaxFamily:
    def test_softmax_matches_scipy(self, rng):
        x = rng.normal(size=(4, 7))
        np.testing.assert_allclose(
            F.softmax(Tensor(x), axis=1).data, scipy_softmax(x, axis=1), atol=1e-12
        )

    def test_log_softmax_matches_scipy(self, rng):
        x = rng.normal(size=(4, 7))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x), axis=1).data,
            scipy_log_softmax(x, axis=1),
            atol=1e-12,
        )

    def test_softmax_rows_sum_to_one(self, rng):
        out = F.softmax(Tensor(rng.normal(size=(5, 3))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(5))

    def test_softmax_stable_for_large_logits(self):
        out = F.softmax(Tensor([[1000.0, 1000.0, -1000.0]]), axis=1)
        assert np.all(np.isfinite(out.data))
        np.testing.assert_allclose(out.data[0, :2], [0.5, 0.5])

    def test_softmax_gradcheck(self, rng):
        t = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        assert gradcheck(lambda t: F.softmax(t, axis=1), [t])

    def test_log_softmax_gradcheck(self, rng):
        t = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        assert gradcheck(lambda t: F.log_softmax(t, axis=1), [t])

    def test_logsumexp_value(self, rng):
        x = rng.normal(size=(4, 6))
        expected = np.log(np.exp(x).sum(axis=1))
        np.testing.assert_allclose(
            F.logsumexp(Tensor(x), axis=1).data, expected, atol=1e-12
        )

    def test_logsumexp_keepdims(self, rng):
        out = F.logsumexp(Tensor(rng.normal(size=(4, 6))), axis=1, keepdims=True)
        assert out.shape == (4, 1)


class TestOneHot:
    def test_basic(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(
            out, [[1, 0, 0], [0, 0, 1], [0, 1, 0]]
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([0, 3]), 3)
        with pytest.raises(ValueError):
            F.one_hot(np.array([-1]), 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            F.one_hot(np.zeros((2, 2), dtype=int), 3)


class TestLosses:
    def test_cross_entropy_matches_manual(self, rng):
        logits = rng.normal(size=(6, 4))
        labels = rng.integers(0, 4, size=6)
        log_probs = scipy_log_softmax(logits, axis=1)
        expected = -log_probs[np.arange(6), labels].mean()
        got = F.cross_entropy(Tensor(logits), labels).item()
        assert got == pytest.approx(expected, abs=1e-10)

    def test_cross_entropy_gradcheck(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        labels = rng.integers(0, 3, size=5)
        assert gradcheck(lambda l: F.cross_entropy(l, labels), [logits])

    def test_cross_entropy_rejects_1d(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor([1.0, 2.0]), np.array([0]))

    def test_nll_consistent_with_cross_entropy(self, rng):
        logits = rng.normal(size=(4, 3))
        labels = rng.integers(0, 3, size=4)
        ce = F.cross_entropy(Tensor(logits), labels).item()
        nll = F.nll_loss(F.log_softmax(Tensor(logits), axis=1), labels).item()
        assert ce == pytest.approx(nll, abs=1e-10)

    def test_mse_value(self):
        loss = F.mse_loss(Tensor([1.0, 3.0]), np.array([0.0, 0.0]))
        assert loss.item() == pytest.approx(5.0)

    def test_mse_gradcheck(self, rng):
        pred = Tensor(rng.normal(size=(4,)), requires_grad=True)
        target = rng.normal(size=(4,))
        assert gradcheck(lambda p: F.mse_loss(p, target), [pred])


class TestConvGeometry:
    def test_output_size(self):
        assert F.conv_output_size(28, 5, 1, 0) == 24
        assert F.conv_output_size(28, 5, 1, 2) == 28
        assert F.conv_output_size(8, 2, 2, 0) == 4

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            F.conv_output_size(3, 5, 1, 0)
