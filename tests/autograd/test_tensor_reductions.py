"""Reduction op tests: sum, mean, var, max."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck


class TestSum:
    def test_full_sum(self, rng):
        t = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert gradcheck(lambda t: t.sum(), [t])

    @pytest.mark.parametrize("axis", [0, 1, (0, 1)])
    def test_axis_sum(self, axis, rng):
        t = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        assert gradcheck(lambda t: t.sum(axis=axis), [t])

    def test_keepdims(self, rng):
        t = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = t.sum(axis=1, keepdims=True)
        assert out.shape == (3, 1)
        assert gradcheck(lambda t: t.sum(axis=1, keepdims=True), [t])

    def test_negative_axis(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert gradcheck(lambda t: t.sum(axis=-1), [t])

    def test_values(self):
        t = Tensor([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(t.sum(axis=0).data, [4.0, 6.0])
        np.testing.assert_allclose(t.sum().data, 10.0)


class TestMean:
    def test_full_mean(self, rng):
        t = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        assert gradcheck(lambda t: t.mean(), [t])

    def test_axis_mean_value(self):
        t = Tensor([[2.0, 4.0], [6.0, 8.0]])
        np.testing.assert_allclose(t.mean(axis=0).data, [4.0, 6.0])

    def test_tuple_axis(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        out = t.mean(axis=(1, 2))
        assert out.shape == (2,)
        assert gradcheck(lambda t: t.mean(axis=(1, 2)), [t])


class TestVar:
    def test_matches_numpy(self, rng):
        data = rng.normal(size=(5, 6))
        t = Tensor(data)
        np.testing.assert_allclose(t.var(axis=0).data, data.var(axis=0))
        np.testing.assert_allclose(t.var().data, data.var())

    def test_gradcheck(self, rng):
        t = Tensor(rng.normal(size=(4, 3)), requires_grad=True)
        assert gradcheck(lambda t: t.var(axis=1), [t], atol=1e-5)


class TestMax:
    def test_values(self):
        t = Tensor([[1.0, 5.0], [4.0, 2.0]])
        np.testing.assert_allclose(t.max().data, 5.0)
        np.testing.assert_allclose(t.max(axis=0).data, [4.0, 5.0])
        np.testing.assert_allclose(t.max(axis=1, keepdims=True).data, [[5.0], [4.0]])

    def test_gradient_unique_max(self):
        t = Tensor([[1.0, 5.0], [4.0, 2.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0], [1.0, 0.0]])

    def test_gradient_splits_ties(self):
        t = Tensor([3.0, 3.0, 1.0], requires_grad=True)
        t.max().backward()
        np.testing.assert_allclose(t.grad, [0.5, 0.5, 0.0])

    def test_gradcheck_distinct_entries(self):
        # Use well-separated values so finite differences avoid the kink.
        t = Tensor(np.array([[1.0, 9.0, 3.0], [7.0, 2.0, 5.0]]), requires_grad=True)
        assert gradcheck(lambda t: t.max(axis=1), [t])
