"""Buffer-reuse arena and gradient-accumulation ownership contracts.

The arena lets PPO updates recycle forward/backward scratch arrays
instead of allocating fresh ones each minibatch.  That is only sound
under two invariants pinned here:

* :meth:`Tensor._accumulate`'s ``owned`` fast path never adopts an array
  someone else still references (aliasing regressions), and
* an update run under :func:`use_arena` is bit-identical to the default
  allocator — same losses, same resulting weights, gradcheck-exact.
"""

import numpy as np
import pytest

from repro.autograd.arena import BufferArena, active_arena, use_arena
from repro.autograd.gradcheck import gradcheck
from repro.autograd.tensor import Tensor
from repro.rl import PPOAgent, PPOConfig


class TestBufferArena:
    def test_take_is_unique_within_cycle(self):
        arena = BufferArena()
        a = arena.take((3, 4))
        b = arena.take((3, 4))
        assert a is not b
        assert not np.shares_memory(a, b)

    def test_reset_recycles_buffers(self):
        arena = BufferArena()
        first = arena.take((2, 2))
        arena.reset()
        assert arena.take((2, 2)) is first
        assert arena.hits == 1 and arena.misses == 1
        assert arena.num_buffers() == 1

    def test_use_arena_scopes_activation(self):
        arena = BufferArena()
        assert active_arena() is None
        with use_arena(arena):
            assert active_arena() is arena
            inner = BufferArena()
            with use_arena(inner):
                assert active_arena() is inner
            assert active_arena() is arena
        assert active_arena() is None


class TestAccumulateOwnership:
    def test_shared_upstream_grad_is_not_adopted(self):
        # c = a + b passes the SAME incoming gradient array through to
        # both parents.  If either adopted it as owned, the other's
        # accumulation (or a later in-place add) would corrupt it.
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        (a + b).backward(np.full((3, 2), 5.0))
        assert not np.shares_memory(a.grad, b.grad)
        a.grad += 1.0
        np.testing.assert_array_equal(b.grad, np.full((3, 2), 5.0))

    def test_seed_gradient_is_copied(self):
        x = Tensor(np.zeros(4), requires_grad=True)
        seed = np.ones(4)
        (x * 1.0 + x).backward(seed)
        seed[:] = -7.0  # caller mutates their seed afterwards
        np.testing.assert_array_equal(x.grad, np.full(4, 2.0))

    def test_diamond_accumulation_under_arena(self):
        # d = a*a + a exercises both accumulate branches (first-touch
        # adoption/copy, then +=) with the arena supplying the first
        # buffer; values must match the arena-less run exactly.
        def grad_of(arena):
            a = Tensor(np.linspace(-1.0, 2.0, 6).reshape(2, 3), requires_grad=True)
            if arena is None:
                ((a * a + a).sum()).backward()
            else:
                arena.reset()
                with use_arena(arena):
                    ((a * a + a).sum()).backward()
            return a.grad

        expected = grad_of(None)
        arena = BufferArena()
        first = grad_of(arena)
        np.testing.assert_array_equal(first, expected)
        # Second pass reuses the pooled buffers (hits > 0) — still exact.
        second = grad_of(arena)
        np.testing.assert_array_equal(second, expected)
        assert arena.hits > 0


def fast_config(**kw):
    kw.setdefault("update_epochs", 2)
    kw.setdefault("minibatch_size", 4)
    return PPOConfig(**kw)


def run_updates(reuse_buffers, updates=2, steps=8):
    """A seeded act/store/update loop; returns (stats list, agent)."""
    agent = PPOAgent(4, 2, config=fast_config(reuse_buffers=reuse_buffers), rng=0)
    rng = np.random.default_rng(17)
    stats = []
    for _ in range(updates):
        for i in range(steps):
            obs = rng.normal(size=4)
            a, lp, v = agent.act(obs)
            agent.store(obs, a, float(rng.normal()), v, lp, done=(i == steps - 1))
        stats.append(agent.update())
    return stats, agent


class TestArenaUpdateIdentity:
    def test_update_bit_identical_to_default_allocator(self):
        stats_off, agent_off = run_updates(reuse_buffers=False)
        stats_on, agent_on = run_updates(reuse_buffers=True)
        for off, on in zip(stats_off, stats_on):
            assert off == on
        params_off = list(agent_off.policy.parameters()) + list(
            agent_off.value_net.parameters()
        )
        params_on = list(agent_on.policy.parameters()) + list(
            agent_on.value_net.parameters()
        )
        assert len(params_off) == len(params_on)
        for p_off, p_on in zip(params_off, params_on):
            np.testing.assert_array_equal(p_off.data, p_on.data)

    def test_enable_buffer_reuse_toggle(self):
        agent = PPOAgent(4, 2, config=fast_config(), rng=0)
        assert agent._arena is None
        agent.enable_buffer_reuse()
        assert agent._arena is not None
        agent.enable_buffer_reuse(False)
        assert agent._arena is None

    def test_gradients_do_not_alias_arena_after_update(self):
        # After update() the parameter .grad attributes must not point
        # at arena-pooled memory (the arena may hand those buffers out
        # again next minibatch).
        _, agent = run_updates(reuse_buffers=True, updates=1)
        arena = agent._arena
        pooled = [buf for pool in arena._pools.values() for buf in pool]
        params = list(agent.policy.parameters()) + list(agent.value_net.parameters())
        for p in params:
            if p.grad is None:
                continue
            assert not any(np.shares_memory(p.grad, buf) for buf in pooled)


class TestArenaGradcheck:
    def test_full_ppo_loss_gradcheck_under_arena(self):
        # Finite-difference check of the full PPO objective (clipped
        # surrogate + entropy + value regression) with every forward
        # running through the arena allocator.  Tiny nets keep the
        # central-difference sweep affordable.
        agent = PPOAgent(
            3, 2, config=PPOConfig(hidden=(4,), reuse_buffers=True), rng=1
        )
        rng = np.random.default_rng(5)
        obs = rng.normal(size=(6, 3))
        actions = rng.normal(size=(6, 2))
        old_logp = Tensor(rng.normal(size=6) * 0.1)
        adv = Tensor(rng.normal(size=6))
        returns = Tensor(rng.normal(size=6))
        cfg = agent.config
        arena = agent._arena

        def ppo_loss(*params):
            arena.reset()
            with use_arena(arena):
                logp = agent.policy.log_prob(obs, actions)
                ratio = (logp - old_logp).exp()
                surr1 = ratio * adv
                surr2 = ratio.clip(1.0 - cfg.clip_ratio, 1.0 + cfg.clip_ratio) * adv
                actor = -(surr1.minimum(surr2)).mean()
                actor = actor - cfg.entropy_coef * agent.policy.entropy()
                values = agent.value_net(obs)
                critic = ((values - returns) * (values - returns)).mean()
                return actor + critic

        params = list(agent.policy.parameters()) + list(agent.value_net.parameters())
        assert gradcheck(ppo_loss, params, atol=1e-5, rtol=1e-3)
