"""Shape manipulation and combination ops."""

import numpy as np
import pytest

from repro.autograd import Tensor, gradcheck


class TestReshape:
    def test_values(self):
        t = Tensor(np.arange(6.0))
        assert t.reshape(2, 3).shape == (2, 3)
        assert t.reshape((3, 2)).shape == (3, 2)
        assert t.reshape(-1).shape == (6,)

    def test_gradcheck(self, rng):
        t = Tensor(rng.normal(size=(2, 6)), requires_grad=True)
        assert gradcheck(lambda t: t.reshape(3, 4).tanh(), [t])

    def test_flatten(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert t.flatten(start_dim=1).shape == (2, 12)
        assert t.flatten(start_dim=0).shape == (24,)
        assert gradcheck(lambda t: t.flatten(start_dim=1), [t])


class TestTranspose:
    def test_default_reverses(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)))
        assert t.transpose().shape == (4, 3, 2)
        assert t.T.shape == (4, 3, 2)

    def test_custom_axes(self, rng):
        t = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        assert t.transpose((1, 0, 2)).shape == (3, 2, 4)
        assert gradcheck(lambda t: t.transpose((2, 0, 1)), [t])

    def test_2d_grad(self, rng):
        t = Tensor(rng.normal(size=(3, 5)), requires_grad=True)
        assert gradcheck(lambda t: t.T.tanh(), [t])


class TestGetitem:
    def test_slice_values(self):
        t = Tensor(np.arange(10.0))
        np.testing.assert_allclose(t[2:5].data, [2.0, 3.0, 4.0])

    def test_slice_gradient(self):
        t = Tensor(np.arange(5.0), requires_grad=True)
        t[1:3].sum().backward()
        np.testing.assert_allclose(t.grad, [0.0, 1.0, 1.0, 0.0, 0.0])

    def test_fancy_index_repeats_accumulate(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        t[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0.0, 1.0, 0.0])

    def test_multidim_gradcheck(self, rng):
        t = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        assert gradcheck(lambda t: t[1:3, ::2], [t])


class TestConcatenateStack:
    def test_concat_values(self):
        a = Tensor([[1.0], [2.0]])
        b = Tensor([[3.0], [4.0]])
        np.testing.assert_allclose(
            Tensor.concatenate([a, b], axis=1).data, [[1.0, 3.0], [2.0, 4.0]]
        )

    def test_concat_gradients_split(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0], requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        out.backward(np.array([10.0, 20.0, 30.0]))
        np.testing.assert_allclose(a.grad, [10.0, 20.0])
        np.testing.assert_allclose(b.grad, [30.0])

    def test_concat_gradcheck(self, rng):
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        assert gradcheck(
            lambda a, b: Tensor.concatenate([a, b], axis=1).tanh(), [a, b]
        )

    def test_stack_values_and_grad(self, rng):
        a = Tensor(rng.normal(size=(3,)), requires_grad=True)
        b = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        assert gradcheck(lambda a, b: Tensor.stack([a, b], axis=1), [a, b])

    def test_stack_axis1(self, rng):
        a = Tensor(rng.normal(size=(3,)))
        b = Tensor(rng.normal(size=(3,)))
        assert Tensor.stack([a, b], axis=1).shape == (3, 2)


class TestMatmul:
    def test_2d_2d(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        out = a @ b
        np.testing.assert_allclose(out.data, a.data @ b.data)
        assert gradcheck(lambda a, b: a @ b, [a, b])

    def test_batched_times_2d(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        assert gradcheck(lambda a, b: a @ b, [a, b])

    def test_batched_times_batched(self, rng):
        a = Tensor(rng.normal(size=(2, 3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 4, 5)), requires_grad=True)
        assert gradcheck(lambda a, b: a @ b, [a, b])

    def test_matrix_times_vector(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        v = Tensor(rng.normal(size=(4,)), requires_grad=True)
        out = a @ v
        assert out.shape == (3,)
        assert gradcheck(lambda a, v: a @ v, [a, v])

    def test_vector_times_matrix(self, rng):
        v = Tensor(rng.normal(size=(3,)), requires_grad=True)
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        out = v @ a
        assert out.shape == (4,)
        assert gradcheck(lambda v, a: v @ a, [v, a])

    def test_vector_dot(self, rng):
        a = Tensor(rng.normal(size=(4,)), requires_grad=True)
        b = Tensor(rng.normal(size=(4,)), requires_grad=True)
        out = a @ b
        assert out.shape == ()
        assert gradcheck(lambda a, b: a @ b, [a, b])
