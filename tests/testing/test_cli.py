"""`python -m repro.testing` exit codes and output."""

from repro.testing.__main__ import main


class TestList:
    def test_lists_every_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("baseline", "faulted", "vectorized_m4"):
            assert name in out


class TestVerify:
    def test_committed_goldens_pass(self, capsys):
        assert main(["verify"]) == 0
        assert "[PASS]" in capsys.readouterr().out

    def test_missing_goldens_fail(self, tmp_path, capsys):
        assert main(["verify", "--dir", str(tmp_path)]) == 1
        assert "[FAIL]" in capsys.readouterr().out

    def test_single_scenario_selection(self, capsys):
        assert main(["verify", "baseline"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out
        assert "faulted" not in out

    def test_unknown_scenario_fails(self, capsys):
        assert main(["verify", "no-such-scenario"]) == 1
        assert "[FAIL]" in capsys.readouterr().out


class TestUpdate:
    def test_update_writes_then_verify_passes(self, tmp_path, capsys):
        assert main(["update", "baseline", "--dir", str(tmp_path)]) == 0
        assert (tmp_path / "baseline.json").exists()
        assert main(["verify", "baseline", "--dir", str(tmp_path)]) == 0


class TestDiff:
    def test_single_cell_passes(self, capsys):
        assert main(["diff", "baseline", "--variants", "rerun"]) == 0
        assert "bit-identical" in capsys.readouterr().out


class TestFuzz:
    def test_small_budget_passes(self, capsys):
        code = main(
            ["fuzz", "--env-cases", "1", "--autograd-cases", "2", "--rounds", "10"]
        )
        assert code == 0
