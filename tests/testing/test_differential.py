"""Differential N-way identity matrix.

One parametrized test proves the headline reproducibility claim: the same
seeded episode is bit-identical whether it runs sequentially, with
observability instrumentation enabled, under the invariant auditor, or
inside the vectorized engine at M=1 and M=4.  This replaces the ad-hoc
pairwise comparisons that used to live in tests/obs/test_bit_identity.py
and tests/core/test_vector.py.
"""

import pytest

from repro.testing import VARIANTS, run_matrix, run_variant
from repro.testing.differential import matrix_report
from repro.testing.scenarios import get_scenario


@pytest.mark.parametrize("scenario", ["baseline", "faulted"])
@pytest.mark.parametrize("variant", VARIANTS)
def test_variant_bit_identical(scenario, variant):
    outcome = run_variant(get_scenario(scenario), variant)
    assert outcome.identical, outcome.describe()
    assert outcome.rounds > 0


def test_run_matrix_covers_all_variants():
    outcomes = run_matrix("baseline", variants=("rerun", "audited"))
    assert [o.variant for o in outcomes] == ["rerun", "audited"]
    assert all(o.identical for o in outcomes)


def test_matrix_report_maps_scenarios_to_outcomes():
    report = matrix_report(["baseline"], variants=("rerun",))
    assert set(report) == {"baseline"}
    (outcome,) = report["baseline"]
    assert outcome.identical
    assert "bit-identical" in outcome.describe()


def test_unknown_variant_rejected():
    with pytest.raises(ValueError):
        run_variant(get_scenario("baseline"), "nonsense")
