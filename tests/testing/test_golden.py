"""Golden-trace harness: committed traces verify, tampering is caught."""

import json

import pytest

from repro.testing import (
    SCENARIOS,
    EpisodeTrace,
    golden,
)
from repro.testing.golden import (
    golden_path,
    load_golden,
    verify_all,
    verify_golden,
    write_golden,
)

pytestmark = pytest.mark.golden


class TestCommittedGoldens:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_verifies(self, name):
        report = verify_golden(name)
        assert report.ok, report.describe()

    def test_verify_all_covers_every_scenario(self):
        reports = verify_all()
        assert {r.name for r in reports} == set(SCENARIOS)
        assert all(r.ok for r in reports)

    def test_at_least_three_goldens_committed(self):
        committed = [n for n in SCENARIOS if golden_path(n).exists()]
        assert len(committed) >= 3


class TestTamperDetection:
    def test_perturbed_trace_reports_first_divergence(self, tmp_path):
        # A one-ULP-scale perturbation in any recorded field must be
        # caught and localized to its replica/round/field.
        trace = load_golden("baseline")
        trace.replicas[0][0]["reward"] = trace.replicas[0][0]["reward"] + 1e-9
        write_golden(trace, directory=tmp_path)
        report = verify_golden("baseline", directory=tmp_path)
        assert not report.ok
        assert report.divergence is not None
        assert report.divergence.round_index == 0
        assert report.divergence.field == "reward"
        assert "round 0" in report.describe()

    def test_hand_edited_file_detected_by_digest(self, tmp_path):
        # Editing the JSON without recomputing the digest is flagged as
        # corruption before any re-capture runs.
        payload = json.loads(golden_path("baseline").read_text())
        payload["replicas"][0][0]["reward"] = 123.456
        (tmp_path / "baseline.json").write_text(json.dumps(payload))
        report = verify_golden("baseline", directory=tmp_path)
        assert not report.ok
        assert "hand-edited" in report.message

    def test_unknown_schema_version_rejected(self, tmp_path):
        payload = json.loads(golden_path("baseline").read_text())
        payload["schema"] = 999
        (tmp_path / "baseline.json").write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="schema"):
            EpisodeTrace.from_payload(payload)
        report = verify_golden("baseline", directory=tmp_path)
        assert not report.ok

    def test_missing_golden_reports_hint(self, tmp_path):
        report = verify_golden("baseline", directory=tmp_path)
        assert not report.ok
        assert "repro.testing update" in report.message


class TestTolerantComparison:
    def test_small_drift_passes_under_nonzero_atol(self, tmp_path):
        trace = load_golden("baseline")
        trace.replicas[0][0]["reward"] = trace.replicas[0][0]["reward"] + 1e-12
        write_golden(trace, directory=tmp_path)
        strict = verify_golden("baseline", directory=tmp_path)
        loose = verify_golden("baseline", directory=tmp_path, atol=1e-9)
        assert not strict.ok
        assert loose.ok


def test_module_exports_public_api():
    for attr in ("verify_golden", "update_golden", "write_golden"):
        assert hasattr(golden, attr)
