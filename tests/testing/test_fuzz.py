"""Seeded fuzz drivers: a fixed corpus slice must stay green."""

from repro.testing import fuzz_autograd_case, fuzz_env_case, run_fuzz


class TestEnvFuzz:
    def test_fixed_corpus_slice_passes(self):
        for seed in range(4):
            case = fuzz_env_case(seed, rounds=25)
            assert case.ok, case.detail
            assert case.kind == "env"

    def test_case_is_deterministic(self):
        a = fuzz_env_case(7, rounds=15)
        b = fuzz_env_case(7, rounds=15)
        assert (a.ok, a.detail) == (b.ok, b.detail)


class TestAutogradFuzz:
    def test_fixed_corpus_slice_passes(self):
        for seed in range(8):
            case = fuzz_autograd_case(seed)
            assert case.ok, case.detail
            assert case.kind == "autograd"


def test_run_fuzz_aggregates_and_reports():
    report = run_fuzz(env_cases=2, autograd_cases=3, base_seed=0, rounds=15)
    assert report.ok
    assert len(report.cases) == 5
    assert report.failures == []
    assert "5/5" in report.describe()
