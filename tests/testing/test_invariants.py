"""Invariant auditor: catches seeded violations, costs nothing when off."""

import tracemalloc

import numpy as np
import pytest

import repro.testing.invariants as invariants_mod
from repro.testing import (
    InvariantAuditor,
    InvariantViolation,
    auditing,
    check_ledger,
    check_simplex,
)
from repro.testing.scenarios import get_scenario, price_schedule


def _audited_env():
    env = get_scenario("baseline").build_env()
    auditor = InvariantAuditor(env)
    prices = price_schedule(env, 3, seed=11)
    return env, auditor, prices


class TestCleanEpisodePasses:
    def test_full_episode_audits_without_violation(self):
        env, auditor, _ = _audited_env()
        prices = price_schedule(env, 40, seed=5)
        with auditing():
            auditor.reset(seed=3)
            for row in prices:
                _, _, terminated, truncated, _ = auditor.step(row)
                if terminated or truncated:
                    break
        assert auditor.rounds_audited > 0

    def test_wrapper_is_transparent(self):
        env, auditor, _ = _audited_env()
        assert auditor.env is env
        assert auditor.n_nodes == env.n_nodes  # __getattr__ passthrough
        assert auditor.ledger is env.ledger


class TestSeededViolationsCaught:
    def test_simplex_violation(self):
        with pytest.raises(InvariantViolation, match="S1"):
            check_simplex(np.array([0.6, 0.5]))
        check_simplex(np.array([0.5, 0.5]))  # clean simplex passes

    def test_ledger_overspend_violation(self):
        env, _, _ = _audited_env()
        env.reset(seed=0)
        env.ledger._spent = env.ledger.total * 2.0  # seeded tampering
        with pytest.raises(InvariantViolation, match="B"):
            check_ledger(env)

    def test_tampered_step_result_negative_time(self):
        env, auditor, prices = _audited_env()
        real_step = env.step

        def tampered(row):
            out = real_step(row)
            out[4]["step_result"].times[0] = -1.0
            return out

        env.step = tampered
        with auditing():
            auditor.reset(seed=3)
            with pytest.raises(InvariantViolation):
                auditor.step(prices[0])

    def test_tampered_observation_breaks_protocol(self):
        env, auditor, prices = _audited_env()
        real_step = env.step

        def tampered(row):
            obs, reward, term, trunc, info = real_step(row)
            return obs + 1.0, reward, term, trunc, info

        env.step = tampered
        with auditing():
            auditor.reset(seed=3)
            with pytest.raises(InvariantViolation, match="P1"):
                auditor.step(prices[0])

    def test_violation_names_round_and_invariant(self):
        env, auditor, prices = _audited_env()
        real_step = env.step

        def tampered(row):
            out = real_step(row)
            out[4]["step_result"].times[0] = -1.0
            return out

        env.step = tampered
        with auditing():
            auditor.reset(seed=3)
            with pytest.raises(InvariantViolation) as excinfo:
                auditor.step(prices[0])
        assert "round" in str(excinfo.value)


class TestDisabledModeIsFree:
    def test_disabled_by_default(self):
        assert not invariants_mod.enabled()

    def test_disabled_step_skips_all_checks(self):
        env, auditor, prices = _audited_env()
        real_step = env.step

        def tampered(row):
            out = real_step(row)
            out[4]["step_result"].times[0] = -1.0  # would trip N1
            return out

        env.step = tampered
        auditor.reset(seed=3)
        auditor.step(prices[0])  # no raise: auditing is off
        assert auditor.rounds_audited == 0

    def test_disabled_step_allocates_nothing_in_auditor(self):
        # Mirrors tests/bench/test_obs_overhead.py: with auditing off the
        # wrapper's step must add zero allocations attributable to the
        # invariants module.
        assert not invariants_mod.enabled()
        env, auditor, prices = _audited_env()
        auditor.reset(seed=3)
        auditor.step(prices[0])  # warm-up: lazy caches, interning

        tracemalloc.start()
        snap_before = tracemalloc.take_snapshot()
        auditor.step(prices[1])
        snap_after = tracemalloc.take_snapshot()
        tracemalloc.stop()

        auditor_bytes = sum(
            stat.size_diff
            for stat in snap_after.compare_to(snap_before, "filename")
            if stat.traceback[0].filename == invariants_mod.__file__
        )
        assert auditor_bytes <= 0, (
            f"disabled auditor allocated {auditor_bytes} bytes in one step"
        )


class TestAuditingContext:
    def test_context_restores_prior_state(self):
        assert not invariants_mod.enabled()
        with auditing():
            assert invariants_mod.enabled()
        assert not invariants_mod.enabled()

    def test_context_restores_after_violation(self):
        with pytest.raises(InvariantViolation):
            with auditing():
                check_simplex(np.array([0.9, 0.9]))
        assert not invariants_mod.enabled()
