"""Golden training trace: the committed curve must reproduce by digest."""

from __future__ import annotations

import json

import pytest

from repro.testing.training import (
    GOLDEN_TRAINING_NAME,
    RECIPE,
    capture_training,
    training_golden_path,
    training_payload,
    update_training_golden,
    verify_training_golden,
)

pytestmark = [pytest.mark.golden, pytest.mark.parallel]


class TestCommittedGolden:
    def test_committed_file_exists(self):
        assert training_golden_path().exists(), (
            "tests/golden/training_chiron_n5.json is missing; regenerate "
            "with `python -m repro.testing update training_chiron_n5`"
        )

    def test_fresh_run_reproduces_committed_fingerprint(self):
        report = verify_training_golden()
        assert report.ok, report.describe()
        assert report.name == GOLDEN_TRAINING_NAME


class TestHarness:
    def test_update_then_verify_roundtrip(self, tmp_path):
        path = update_training_golden(tmp_path)
        assert path == training_golden_path(tmp_path)
        report = verify_training_golden(tmp_path)
        assert report.ok, report.describe()

    def test_missing_file_reported(self, tmp_path):
        report = verify_training_golden(tmp_path)
        assert not report.ok
        assert "update" in report.message

    def test_hand_edited_file_detected(self, tmp_path):
        path = update_training_golden(tmp_path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["rows"][0]["result"]["reward_exterior"] += 1.0
        path.write_text(json.dumps(payload), encoding="utf-8")
        report = verify_training_golden(tmp_path)
        assert not report.ok
        assert "hand-edited" in report.message

    def test_recipe_drift_detected(self, tmp_path):
        path = update_training_golden(tmp_path)
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["recipe"]["episodes"] = RECIPE["episodes"] + 1
        path.write_text(json.dumps(payload), encoding="utf-8")
        report = verify_training_golden(tmp_path)
        assert not report.ok
        assert "recipe" in report.message

    def test_payload_fingerprint_covers_rows(self):
        rows = capture_training()
        payload = training_payload(rows)
        assert payload["schema"].startswith("repro.testing.training/")
        assert payload["recipe"] == RECIPE
        assert len(payload["rows"]) == RECIPE["episodes"]
