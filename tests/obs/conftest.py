"""Observability-suite fixtures: never leak a live registry across tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_obs_state():
    yield
    obs.disable()
