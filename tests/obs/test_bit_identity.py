"""Observability must never perturb rollouts: bit-identical on or off."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.builder import build_environment
from repro.core.chiron import ChironAgent, ChironConfig
from repro.faults.injector import FaultConfig

pytestmark = [pytest.mark.obs, pytest.mark.faults]

_ARRAY_FIELDS = ("state", "payments", "zetas", "times", "utilities")
_LIST_FIELDS = (
    "participants",
    "unavailable",
    "delivered",
    "crashed",
    "late",
    "corrupted",
    "quarantined",
)
_SCALAR_FIELDS = (
    "reward_exterior",
    "reward_inner",
    "done",
    "truncated",
    "round_kept",
    "accuracy",
    "round_time",
    "efficiency",
    "remaining_budget",
    "round_index",
    "clawback",
)


def _run_seeded_episode(enable_obs: bool):
    """One fully seeded, faulted episode; returns its StepResult stream."""
    build = build_environment(
        n_nodes=4,
        budget=15.0,
        seed=123,
        faults=FaultConfig.mixed(0.3, seed=7),
    )
    env = build.env
    agent = ChironAgent(
        env, ChironConfig(), rng=np.random.default_rng(123)
    )
    if enable_obs:
        obs.enable()
    try:
        state, _ = env.reset(seed=99)
        from repro.core.mechanism import Observation

        observation = Observation(state, env.ledger.remaining, env.round_index)
        agent.begin_episode(observation)
        results = []
        while not env.done:
            prices = agent.propose_prices(observation)
            _, _, _, _, info = env.step(prices)
            result = info["step_result"]
            agent.observe(prices, result)
            results.append(result)
            observation = Observation(
                result.state, result.remaining_budget, result.round_index
            )
        agent.end_episode()
        return results
    finally:
        if enable_obs:
            obs.disable()


def _assert_identical(a, b):
    assert len(a) == len(b)
    for r_off, r_on in zip(a, b):
        for field in _SCALAR_FIELDS:
            assert getattr(r_off, field) == getattr(r_on, field), field
        for field in _LIST_FIELDS:
            assert getattr(r_off, field) == getattr(r_on, field), field
        for field in _ARRAY_FIELDS:
            np.testing.assert_array_equal(
                getattr(r_off, field), getattr(r_on, field), err_msg=field
            )
        if r_off.reliability is None:
            assert r_on.reliability is None
        else:
            np.testing.assert_array_equal(r_off.reliability, r_on.reliability)


def test_rollout_bit_identical_with_obs_on_and_off():
    baseline = _run_seeded_episode(enable_obs=False)
    instrumented = _run_seeded_episode(enable_obs=True)
    rerun = _run_seeded_episode(enable_obs=False)
    # Sanity: the episode exercises the fault pipeline at all.
    assert any(
        r.crashed or r.late or r.corrupted or r.quarantined for r in baseline
    )
    _assert_identical(baseline, instrumented)
    _assert_identical(baseline, rerun)


def test_instrumented_episode_populates_metrics_and_profile():
    obs.enable()
    try:
        _run_seeded_episode(enable_obs=False)  # registry already live
        snapshot = obs.snapshot()
    finally:
        obs.disable()
    names = {m["name"] for m in snapshot["metrics"]}
    assert {"env.rounds", "env.round_time", "env.accuracy"} <= names
    paths = {node["path"] for node in snapshot["profile"]}
    assert "env.step" in paths
    assert "env.step/env.respond" in paths
