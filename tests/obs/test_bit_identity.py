"""Observability must never perturb rollouts: bit-identical on or off.

The comparison itself lives in :mod:`repro.testing` — episodes are
captured as :class:`EpisodeTrace` objects and compared digest-first with
``first_divergence`` localizing any mismatch, instead of the hand-rolled
per-field loops this file used to carry.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.builder import build_environment
from repro.core.chiron import ChironAgent, ChironConfig
from repro.faults.injector import FaultConfig
from repro.testing import capture_mechanism, first_divergence

pytestmark = [pytest.mark.obs, pytest.mark.faults]


def _capture_seeded_episode(enable_obs: bool):
    """One fully seeded, faulted episode as an EpisodeTrace."""
    build = build_environment(
        n_nodes=4,
        budget=15.0,
        seed=123,
        faults=FaultConfig.mixed(0.3, seed=7),
    )
    env = build.env
    agent = ChironAgent(env, ChironConfig(), rng=np.random.default_rng(123))
    if enable_obs:
        obs.enable()
    try:
        return capture_mechanism(env, agent, episode_seed=99, scenario="obs")
    finally:
        if enable_obs:
            obs.disable()


def test_rollout_bit_identical_with_obs_on_and_off():
    baseline = _capture_seeded_episode(enable_obs=False)
    instrumented = _capture_seeded_episode(enable_obs=True)
    rerun = _capture_seeded_episode(enable_obs=False)
    # Sanity: the episode exercises the fault pipeline at all.
    assert any(
        r["crashed"] or r["late"] or r["corrupted"] or r["quarantined"]
        for r in baseline.replicas[0]
    )
    for other in (instrumented, rerun):
        divergence = first_divergence(baseline, other)
        assert divergence is None, divergence.describe()
        assert baseline.digest() == other.digest()


def test_instrumented_episode_populates_metrics_and_profile():
    obs.enable()
    try:
        _capture_seeded_episode(enable_obs=False)  # registry already live
        snapshot = obs.snapshot()
    finally:
        obs.disable()
    names = {m["name"] for m in snapshot["metrics"]}
    assert {"env.rounds", "env.round_time", "env.accuracy"} <= names
    paths = {node["path"] for node in snapshot["profile"]}
    assert "env.step" in paths
    assert "env.step/env.respond" in paths
