"""CLI smoke tests: `python -m repro.obs report` and `demo`."""

from __future__ import annotations

import pytest

from repro.obs.__main__ import main, render_report
from repro.obs.exporters import write_snapshot
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Span

pytestmark = pytest.mark.obs


@pytest.fixture
def snapshot_file(tmp_path):
    reg = MetricsRegistry()
    reg.counter("env.rounds").inc(3)
    reg.histogram("env.round_time").observe(2.0)
    with Span(reg.tracer, "episode"):
        pass
    return write_snapshot(reg.snapshot(), tmp_path / "snap.json")


def test_report_text(snapshot_file, capsys):
    assert main(["report", str(snapshot_file)]) == 0
    out = capsys.readouterr().out
    assert "env.rounds" in out
    assert "episode" in out


def test_report_prometheus(snapshot_file, capsys):
    assert main(["report", str(snapshot_file), "--format", "prometheus"]) == 0
    out = capsys.readouterr().out
    assert "env_rounds 3.0" in out
    assert "span_calls_total" in out


def test_render_report_empty():
    text = render_report({"metrics": [], "profile": []})
    assert "(none)" in text
    assert "(no spans recorded)" in text


def test_demo_smoke(tmp_path, capsys):
    out_path = tmp_path / "demo.json"
    code = main(
        [
            "demo",
            "--n-nodes",
            "3",
            "--budget",
            "5",
            "--seed",
            "0",
            "--out",
            str(out_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "env_rounds" in out
    assert "span profile" in out
    assert out_path.exists()
    # The demo must leave observability disabled.
    from repro import obs

    assert not obs.enabled()
