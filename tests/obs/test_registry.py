"""Metrics registry: instruments, labels, the enable/disable facade."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import obs
from repro.obs.registry import (
    NOOP_COUNTER,
    NOOP_EWMA,
    NOOP_GAUGE,
    NOOP_HISTOGRAM,
    MetricsRegistry,
    _P2Quantile,
)

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(2.5)
        assert reg.counter("a").value == 3.5

    def test_counter_rejects_negative(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="must be >= 0"):
            reg.counter("a").inc(-1.0)

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5.0)
        g.inc(1.0)
        g.dec(2.0)
        assert g.value == 4.0

    def test_ewma_first_value_then_blend(self):
        reg = MetricsRegistry()
        e = reg.ewma("e", alpha=0.5)
        e.update(10.0)
        assert e.value == 10.0
        e.update(0.0)
        assert e.value == 5.0
        assert e.count == 2

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=[1.0, 10.0])
        for value in (0.5, 0.7, 5.0, 100.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["buckets"] == [[1.0, 2], [10.0, 3]]
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.2)
        assert snap["min"] == 0.5
        assert snap["max"] == 100.0

    def test_histogram_quantiles_track_distribution(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        values = np.linspace(0.0, 100.0, 1001)
        for v in values:
            h.observe(float(v))
        assert h.quantile(0.5) == pytest.approx(50.0, abs=2.0)
        assert h.quantile(0.9) == pytest.approx(90.0, abs=2.0)
        assert h.quantile(0.99) == pytest.approx(99.0, abs=2.0)

    def test_quantile_small_sample_interpolates(self):
        q = _P2Quantile(0.5)
        for x in (3.0, 1.0, 2.0):
            q.observe(x)
        assert q.value() == pytest.approx(2.0)

    def test_quantile_empty_is_none(self):
        assert _P2Quantile(0.5).value() is None


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.counter("x", node=1) is reg.counter("x", node=1)
        assert reg.counter("x", node=1) is not reg.counter("x", node=2)

    def test_labels_coerced_to_str(self):
        reg = MetricsRegistry()
        c = reg.counter("x", node=3)
        assert c.labels == {"node": "3"}

    def test_type_clash_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_snapshot_lists_all_instruments(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.ewma("e").update(2.0)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert sorted(m["name"] for m in snap["metrics"]) == [
            "c",
            "e",
            "g",
            "h",
        ]
        assert snap["profile"] == []

    def test_reset_clears_instruments_keeps_sinks(self):
        reg = MetricsRegistry()

        class Sink:
            def emit(self, name, record):
                pass

        sink = Sink()
        reg.add_sink(sink)
        reg.counter("c").inc()
        reg.reset()
        assert reg.snapshot()["metrics"] == []
        assert reg.sinks == [sink]

    def test_concurrent_counter_increments(self):
        reg = MetricsRegistry()

        def work():
            for _ in range(1000):
                reg.counter("hits").inc()

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter("hits").value == 4000.0


class TestFacade:
    def test_disabled_returns_noop_singletons(self):
        assert not obs.enabled()
        assert obs.counter("anything") is NOOP_COUNTER
        assert obs.gauge("anything") is NOOP_GAUGE
        assert obs.ewma("anything") is NOOP_EWMA
        assert obs.histogram("anything") is NOOP_HISTOGRAM
        assert obs.span("anything") is obs.NOOP_SPAN

    def test_enable_routes_facade_to_live_registry(self):
        registry = obs.enable()
        assert obs.enabled()
        obs.counter("hits").inc()
        assert registry.counter("hits").value == 1.0
        returned = obs.disable()
        assert returned is registry
        assert not obs.enabled()

    def test_enable_twice_keeps_registry(self):
        first = obs.enable()
        assert obs.enable() is first

    def test_enable_explicit_registry_replaces(self):
        obs.enable()
        mine = MetricsRegistry()
        assert obs.enable(mine) is mine
        assert obs.get_registry() is mine

    def test_disabled_snapshot_is_empty(self):
        assert obs.snapshot() == {"metrics": [], "profile": []}
        assert obs.profile() == []


class TestConcurrencyHammer:
    """Snapshots taken mid-mutation must never be torn.

    Every instrument locks its snapshot, so a reader racing four writer
    threads must always observe internally consistent pairs — EWMA
    (value, count), histogram (count, sum, buckets) — and monotonically
    growing counters.  This pins the lock audit: removing any snapshot
    lock makes this test flaky.
    """

    def test_snapshot_under_concurrent_mutation(self):
        reg = MetricsRegistry()
        stop = threading.Event()
        errors: list = []

        def writer(offset: int):
            i = 0
            while not stop.is_set():
                reg.counter("hits").inc()
                reg.gauge("level").set(float(offset))
                reg.ewma("eff", alpha=0.5).update(1.0)
                reg.histogram("lat", buckets=(1.0, 10.0)).observe(
                    0.5 if i % 2 else 5.0
                )
                i += 1

        def reader():
            last_hits = 0.0
            while not stop.is_set():
                try:
                    snap = reg.snapshot()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                for metric in snap["metrics"]:
                    if metric["name"] == "hits":
                        assert metric["value"] >= last_hits
                        last_hits = metric["value"]
                    elif metric["name"] == "eff":
                        # EWMA of a constant stream is that constant once
                        # any update landed; a torn (value, count) pair
                        # would surface as count>0 with value 0.0.
                        if metric["count"] > 0:
                            assert metric["value"] == 1.0
                    elif metric["name"] == "lat":
                        cumulative = [c for _b, c in metric["buckets"]]
                        assert cumulative == sorted(cumulative)
                        assert metric["count"] >= cumulative[-1]
                        if metric["count"]:
                            assert metric["min"] >= 0.5
                            assert metric["max"] <= 5.0

        writers = [
            threading.Thread(target=writer, args=(k,)) for k in range(4)
        ]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in writers + readers:
            t.start()
        import time

        time.sleep(0.8)
        stop.set()
        for t in writers + readers:
            t.join(timeout=10)
        assert not errors
        # Final state is coherent: every write landed exactly once.
        snap = {m["name"]: m for m in reg.snapshot()["metrics"]}
        assert snap["hits"]["value"] == snap["lat"]["count"] * 1.0
        assert snap["eff"]["count"] == int(snap["hits"]["value"])

    def test_quantile_reads_race_observes(self):
        reg = MetricsRegistry()
        hist = reg.histogram("q", buckets=(1.0,))
        stop = threading.Event()
        errors: list = []

        def observe():
            while not stop.is_set():
                hist.observe(0.5)

        def query():
            while not stop.is_set():
                try:
                    value = hist.quantile(0.5)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return
                assert value is None or value == 0.5

        threads = [threading.Thread(target=observe) for _ in range(2)] + [
            threading.Thread(target=query) for _ in range(2)
        ]
        for t in threads:
            t.start()
        import time

        time.sleep(0.4)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert not errors
