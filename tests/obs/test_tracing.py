"""Span tracing: nesting, self-time accounting, thread isolation."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.tracing import NOOP_SPAN, Span, SpanTracer, format_profile

pytestmark = pytest.mark.obs


def _by_path(profile):
    return {node["path"]: node for node in profile}


class TestSpanTracer:
    def test_single_span_counts_and_times(self):
        tracer = SpanTracer()
        with Span(tracer, "work"):
            time.sleep(0.01)
        nodes = _by_path(tracer.profile())
        assert set(nodes) == {"work"}
        node = nodes["work"]
        assert node["count"] == 1
        assert node["depth"] == 0
        assert node["name"] == "work"
        assert node["total"] >= 0.01
        assert node["self"] == pytest.approx(node["total"])

    def test_nesting_builds_paths_and_self_time(self):
        tracer = SpanTracer()
        with Span(tracer, "outer"):
            with Span(tracer, "inner"):
                time.sleep(0.01)
        nodes = _by_path(tracer.profile())
        assert set(nodes) == {"outer", "outer/inner"}
        outer, inner = nodes["outer"], nodes["outer/inner"]
        assert inner["depth"] == 1
        assert inner["name"] == "inner"
        # Parent total covers the child; parent self excludes it.
        assert outer["total"] >= inner["total"]
        assert outer["self"] == pytest.approx(
            outer["total"] - inner["total"], abs=1e-6
        )

    def test_same_name_different_parents_are_distinct(self):
        tracer = SpanTracer()
        with Span(tracer, "a"):
            with Span(tracer, "step"):
                pass
        with Span(tracer, "b"):
            with Span(tracer, "step"):
                pass
        assert set(_by_path(tracer.profile())) == {
            "a",
            "a/step",
            "b",
            "b/step",
        }

    def test_repeated_calls_aggregate(self):
        tracer = SpanTracer()
        for _ in range(5):
            with Span(tracer, "loop"):
                pass
        assert _by_path(tracer.profile())["loop"]["count"] == 5

    def test_profile_sorted_parent_before_child(self):
        tracer = SpanTracer()
        with Span(tracer, "z"):
            pass
        with Span(tracer, "a"):
            with Span(tracer, "child"):
                pass
        paths = [node["path"] for node in tracer.profile()]
        assert paths == ["a", "a/child", "z"]

    def test_end_without_begin_raises(self):
        with pytest.raises(RuntimeError, match="without a matching begin"):
            SpanTracer().end()

    def test_threads_have_independent_stacks(self):
        tracer = SpanTracer()
        ready = threading.Barrier(2)

        def worker(name):
            with Span(tracer, name):
                ready.wait(timeout=5)

        threads = [
            threading.Thread(target=worker, args=(f"t{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Concurrent roots never nest under each other.
        assert set(_by_path(tracer.profile())) == {"t0", "t1"}

    def test_reset_clears_stats(self):
        tracer = SpanTracer()
        with Span(tracer, "x"):
            pass
        tracer.reset()
        assert tracer.profile() == []


class TestNoopSpan:
    def test_reentrant_and_shared(self):
        with NOOP_SPAN:
            with NOOP_SPAN:
                pass

    def test_propagates_exceptions(self):
        with pytest.raises(ValueError):
            with NOOP_SPAN:
                raise ValueError("boom")


class TestFormatProfile:
    def test_empty(self):
        assert format_profile([]) == "(no spans recorded)"

    def test_indents_by_depth(self):
        tracer = SpanTracer()
        with Span(tracer, "outer"):
            with Span(tracer, "inner"):
                pass
        text = format_profile(tracer.profile())
        lines = text.splitlines()
        assert "span" in lines[0]
        assert any(line.endswith("outer") for line in lines)
        assert any(line.endswith("  inner") for line in lines)
