"""Exporters: Prometheus round-trip, JSON round-trip, the JSONL sink."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.obs.exporters import (
    JsonlEventSink,
    load_snapshot,
    parse_prometheus,
    read_jsonl,
    sanitize_metric_name,
    to_json,
    to_prometheus,
    write_snapshot,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Span

pytestmark = pytest.mark.obs


def _populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("env.rounds").inc(7)
    reg.counter("faults.injected", kind="crash").inc(2)
    reg.gauge("env.accuracy").set(0.93)
    reg.ewma("env.efficiency").update(1.5)
    h = reg.histogram("env.round_time", buckets=[1.0, 10.0])
    for v in (0.5, 2.0, 20.0):
        h.observe(v)
    with Span(reg.tracer, "episode"):
        with Span(reg.tracer, "env.step"):
            pass
    return reg


class TestPrometheus:
    def test_sanitize(self):
        assert sanitize_metric_name("env.round_time") == "env_round_time"
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_round_trip_scalars(self):
        snapshot = _populated_registry().snapshot()
        samples = parse_prometheus(to_prometheus(snapshot))
        assert samples[("env_rounds", ())] == 7.0
        assert samples[("faults_injected", (("kind", "crash"),))] == 2.0
        assert samples[("env_accuracy", ())] == pytest.approx(0.93)
        assert samples[("env_efficiency", ())] == pytest.approx(1.5)

    def test_round_trip_histogram(self):
        snapshot = _populated_registry().snapshot()
        samples = parse_prometheus(to_prometheus(snapshot))
        assert samples[("env_round_time_bucket", (("le", "1.0"),))] == 1.0
        assert samples[("env_round_time_bucket", (("le", "10.0"),))] == 2.0
        assert samples[("env_round_time_bucket", (("le", "+Inf"),))] == 3.0
        assert samples[("env_round_time_count", ())] == 3.0
        assert samples[("env_round_time_sum", ())] == pytest.approx(22.5)
        assert ("env_round_time_quantile", (("quantile", "0.5"),)) in samples

    def test_round_trip_spans(self):
        snapshot = _populated_registry().snapshot()
        samples = parse_prometheus(to_prometheus(snapshot))
        assert samples[("span_calls_total", (("span", "episode"),))] == 1.0
        assert (
            "span_seconds_total",
            (("span", "episode/env.step"),),
        ) in samples
        assert (
            "span_self_seconds_total",
            (("span", "episode"),),
        ) in samples

    def test_type_lines_present(self):
        text = to_prometheus(_populated_registry().snapshot())
        assert "# TYPE env_rounds counter" in text
        assert "# TYPE env_accuracy gauge" in text
        assert "# TYPE env_round_time histogram" in text


class TestJson:
    def test_round_trip_string(self):
        snapshot = _populated_registry().snapshot()
        assert load_snapshot(to_json(snapshot)) == snapshot

    def test_round_trip_file(self, tmp_path):
        snapshot = _populated_registry().snapshot()
        path = write_snapshot(snapshot, tmp_path / "snap.json")
        assert load_snapshot(path) == snapshot
        assert load_snapshot(str(path)) == snapshot


class TestJsonlSink:
    def test_streams_events_immediately(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit("env.round", {"round_index": 0, "accuracy": 0.5})
            # Line-buffered: the record is on disk before close().
            first = path.read_text().splitlines()[0]
            assert json.loads(first)["event"] == "env.round"
            sink.emit("env.round", {"round_index": 1, "accuracy": 0.6})
            assert sink.events_written == 2
        records = read_jsonl(path)
        assert [r["round_index"] for r in records] == [0, 1]

    def test_registry_event_dispatch(self, tmp_path):
        registry = obs.enable()
        sink = JsonlEventSink(tmp_path / "events.jsonl")
        registry.add_sink(sink)
        obs.event("tick", {"n": 1})
        registry.remove_sink(sink)
        obs.event("tick", {"n": 2})  # after removal: not written
        sink.close()
        records = read_jsonl(sink.path)
        assert len(records) == 1
        assert records[0] == {"event": "tick", "n": 1}

    def test_sink_requires_emit(self):
        registry = obs.enable()
        with pytest.raises(TypeError, match="emit"):
            registry.add_sink(object())


class TestHostileLabels:
    """Labels carrying Prometheus metacharacters must round-trip exactly.

    Span paths are arbitrary strings, so backslashes, quotes, newlines
    and even ``}``/``,``/``=`` inside a label value are all reachable in
    production exports — not contrived input.
    """

    HOSTILE = [
        'quo"te',
        "back\\slash",
        "new\nline",
        'all\\three" \n at once',
        "brace } and , comma = equals",
        "trailing backslash\\",
        "",
    ]

    def test_escape_unescape_inverse(self):
        from repro.obs.exporters import (
            escape_label_value,
            unescape_label_value,
        )

        for value in self.HOSTILE:
            escaped = escape_label_value(value)
            assert "\n" not in escaped  # stays on one exposition line
            assert unescape_label_value(escaped) == value

    def test_hostile_labels_round_trip_through_text_format(self):
        reg = MetricsRegistry()
        for i, value in enumerate(self.HOSTILE):
            reg.counter("hostile.hits", source=value).inc(i + 1)
        samples = parse_prometheus(to_prometheus(reg.snapshot()))
        for i, value in enumerate(self.HOSTILE):
            key = ("hostile_hits", (("source", value),))
            assert samples[key] == float(i + 1)

    def test_hostile_span_path_round_trips(self):
        reg = MetricsRegistry()
        with Span(reg.tracer, 'ep"iso\\de'):
            pass
        samples = parse_prometheus(to_prometheus(reg.snapshot()))
        span_keys = [
            labels
            for (name, labels) in samples
            if name == "span_calls_total"
        ]
        assert (("span", 'ep"iso\\de'),) in span_keys

    def test_each_export_is_independent(self):
        # Regression for the mutable-default bug in ``_format_labels``:
        # one call's extra labels must not leak into the next call.
        reg = MetricsRegistry()
        reg.histogram("h", buckets=[1.0]).observe(0.5)
        reg.counter("c").inc()
        first = to_prometheus(reg.snapshot())
        second = to_prometheus(reg.snapshot())
        assert first == second
        # the bare counter line carries no `le` label from the histogram
        for line in second.splitlines():
            if line.startswith("c "):
                assert "le=" not in line


class TestReadJsonlTornTail:
    """A crash mid-emit tears at most the final line; the reader forgives
    exactly that and nothing else."""

    def _stream_with_tear(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit("round", {"n": 0})
            sink.emit("round", {"n": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"event": "round", "n"')  # torn write
        return path

    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = self._stream_with_tear(tmp_path)
        records = read_jsonl(path)
        assert [r["n"] for r in records] == [0, 1]

    def test_strict_mode_still_raises(self, tmp_path):
        path = self._stream_with_tear(tmp_path)
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path, strict=True)

    def test_mid_file_damage_always_raises(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            for n in range(3):
                sink.emit("round", {"n": n})
        lines = path.read_text().splitlines()
        lines[1] = lines[1][:-2]  # corrupt a non-final record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)
