"""Perfect-information myopic planner."""

import numpy as np
import pytest

from repro.baselines import MyopicPlannerOracle
from repro.core import build_environment
from repro.core.mechanism import Observation
from repro.experiments.runner import run_episode


def step_result(env, prices):
    """Step through the Gymnasium-style API, returning the StepResult."""
    *_, info = env.step(prices)
    return info["step_result"]



@pytest.fixture
def env(surrogate_env):
    return surrogate_env.env


class TestMyopicPlanner:
    def test_requires_surrogate_mode(self):
        build = build_environment(
            task_name="mnist", n_nodes=2, budget=5.0, accuracy_mode="real",
            seed=0, samples_per_node=10, test_size=10,
        )
        with pytest.raises(TypeError, match="surrogate"):
            MyopicPlannerOracle(build.env)

    def test_full_fleet_participates(self, env):
        planner = MyopicPlannerOracle(env)
        env.reset()
        obs = Observation(env.encoder.encode(env.ledger.remaining, 0), env.ledger.remaining, 0)
        result = step_result(env, planner.propose_prices(obs))
        assert len(result.participants) == env.n_nodes
        assert result.efficiency > 0.9  # Lemma-1 allocation

    def test_episode_completes(self, env):
        episode, _ = run_episode(env, MyopicPlannerOracle(env))
        assert episode.rounds >= 1
        assert episode.final_accuracy > 0.5

    def test_ignores_budget_state(self, env):
        """Myopia: the chosen prices do not depend on remaining budget."""
        planner = MyopicPlannerOracle(env)
        state, _ = env.reset()
        rich = Observation(state, env.ledger.remaining, 0)
        poor = Observation(state, env.ledger.remaining * 0.01, 0)
        np.testing.assert_allclose(
            planner.propose_prices(rich), planner.propose_prices(poor)
        )

    def test_grid_validated(self, env):
        with pytest.raises(ValueError):
            MyopicPlannerOracle(env, grid=0)

    def test_longterm_pacing_beats_perfect_myopia_on_rounds(self):
        """The paper's thesis: budget pacing buys rounds myopia cannot."""
        from repro.experiments import make_mechanism
        from repro.experiments.runner import evaluate_mechanism, train_mechanism

        build = build_environment(
            task_name="mnist", n_nodes=5, budget=20.0,
            accuracy_mode="surrogate", seed=0, max_rounds=200,
        )
        env = build.env
        myopic_ep, _ = run_episode(env, MyopicPlannerOracle(env))

        chiron = make_mechanism("chiron", env, rng=1, tier="quick")
        train_mechanism(env, chiron, episodes=100)
        chiron_eps = evaluate_mechanism(env, chiron, 3)
        chiron_rounds = np.mean([e.rounds for e in chiron_eps])
        assert chiron_rounds > myopic_ep.rounds
