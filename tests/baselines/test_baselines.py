"""Baseline mechanisms."""

import numpy as np
import pytest

from repro.baselines import (
    DRLSingleAgent,
    DRLSingleConfig,
    EqualTimeOracle,
    FixedPriceMechanism,
    GreedyMechanism,
    GreedyConfig,
    RandomMechanism,
)
from repro.core.mechanism import Observation
from repro.experiments.runner import run_episode, train_mechanism
from repro.rl import PPOConfig


def step_result(env, prices):
    """Step through the Gymnasium-style API, returning the StepResult."""
    *_, info = env.step(prices)
    return info["step_result"]



@pytest.fixture
def env(surrogate_env):
    return surrogate_env.env


def obs_for(env):
    state, _ = env.reset()
    return Observation(state, env.ledger.remaining, 0)


class TestDRLSingle:
    def test_myopic_gamma_zero(self, env):
        agent = DRLSingleAgent(env, rng=0)
        assert agent.agent.buffer.gamma == 0.0

    def test_non_myopic_keeps_gamma(self, env):
        cfg = DRLSingleConfig(ppo=PPOConfig(gamma=0.9), myopic=False)
        agent = DRLSingleAgent(env, cfg, rng=0)
        assert agent.agent.buffer.gamma == 0.9

    def test_prices_within_bounds(self, env):
        agent = DRLSingleAgent(env, rng=0)
        obs = obs_for(env)
        agent.begin_episode(obs)
        prices = agent.propose_prices(obs)
        floors, caps = agent.per_node_price_bounds()
        assert np.all(prices >= floors - 1e-15)
        assert np.all(prices <= caps + 1e-15)

    def test_full_episode_and_update(self, env):
        agent = DRLSingleAgent(
            env, DRLSingleConfig(ppo=PPOConfig(actor_lr=1e-3, critic_lr=1e-3)), rng=0
        )
        before = agent.agent.policy.flat_parameters()
        train_mechanism(env, agent, episodes=3)
        assert not np.allclose(agent.agent.policy.flat_parameters(), before)

    def test_observe_requires_propose(self, env):
        agent = DRLSingleAgent(env, rng=0)
        obs = obs_for(env)
        agent.begin_episode(obs)
        prices = agent.propose_prices(obs)
        result = step_result(env, prices)
        agent.observe(prices, result)
        with pytest.raises(RuntimeError):
            agent.observe(prices, result)


class TestGreedy:
    def test_warmup_explores(self, env):
        agent = GreedyMechanism(env, GreedyConfig(warmup_actions=4), rng=0)
        obs = obs_for(env)
        agent.begin_episode(obs)
        p1 = agent.propose_prices(obs)
        result = step_result(env, p1)
        agent.observe(p1, result)
        p2 = agent.propose_prices(obs)
        assert not np.allclose(p1, p2, atol=0.0)  # still exploring during warmup

    def test_exploits_best_action_after_warmup(self, env):
        agent = GreedyMechanism(
            env, GreedyConfig(warmup_actions=2, epsilon=0.0), rng=0
        )
        run_episode(env, agent)
        run_episode(env, agent)
        # After warmup with ε=0 the same best action repeats.
        obs = obs_for(env)
        agent.begin_episode(obs)
        p1 = agent.propose_prices(obs)
        best = max(agent._buffer, key=lambda r: r.mean_reward)
        np.testing.assert_allclose(p1, best.prices)

    def test_buffer_bounded(self, env):
        cfg = GreedyConfig(warmup_actions=4, buffer_size=6, epsilon=1.0)
        agent = GreedyMechanism(env, cfg, rng=0)
        for _ in range(5):
            run_episode(env, agent)
        assert len(agent._buffer) <= 6

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GreedyConfig(epsilon=1.5)
        with pytest.raises(ValueError):
            GreedyConfig(warmup_actions=10, buffer_size=5)

    def test_full_episode(self, env):
        episode, diag = run_episode(env, GreedyMechanism(env, rng=0))
        assert episode.rounds >= 1
        assert diag["buffer_size"] >= 1


class TestFixedPrice:
    def test_constant_prices(self, env):
        mech = FixedPriceMechanism(env, markup=2.0)
        obs = obs_for(env)
        p1 = mech.propose_prices(obs)
        p2 = mech.propose_prices(obs)
        np.testing.assert_allclose(p1, p2)

    def test_everyone_participates(self, env):
        mech = FixedPriceMechanism(env, markup=1.5)
        env.reset()
        result = step_result(env, mech.propose_prices(obs_for(env)))
        assert len(result.participants) == env.n_nodes

    def test_markup_validation(self, env):
        with pytest.raises(ValueError):
            FixedPriceMechanism(env, markup=0.5)

    def test_capped_at_price_caps(self, env):
        mech = FixedPriceMechanism(env, markup=1e6)
        prices = mech.propose_prices(obs_for(env))
        assert np.all(prices <= env.price_caps + 1e-15)


class TestRandom:
    def test_prices_in_bounds(self, env):
        mech = RandomMechanism(env, rng=0)
        obs = obs_for(env)
        floors, caps = mech.per_node_price_bounds()
        for _ in range(5):
            prices = mech.propose_prices(obs)
            assert np.all(prices >= floors) and np.all(prices <= caps)

    def test_varies(self, env):
        mech = RandomMechanism(env, rng=0)
        obs = obs_for(env)
        assert not np.allclose(
            mech.propose_prices(obs), mech.propose_prices(obs), atol=0.0
        )


class TestOracle:
    def test_equal_times_in_episode(self, env):
        mech = EqualTimeOracle(env, spend_fraction=0.3)
        env.reset()
        result = step_result(env, mech.propose_prices(obs_for(env)))
        assert len(result.participants) == env.n_nodes
        assert result.efficiency > 0.97

    def test_spend_fraction_scales_cost(self, env):
        cheap = EqualTimeOracle(env, spend_fraction=0.05)._prices.sum()
        dear = EqualTimeOracle(env, spend_fraction=0.9)._prices.sum()
        assert dear > cheap

    def test_fraction_validated(self, env):
        with pytest.raises(ValueError):
            EqualTimeOracle(env, spend_fraction=1.5)

    def test_beats_random_efficiency(self, env):
        oracle_ep, _ = run_episode(env, EqualTimeOracle(env, spend_fraction=0.3))
        random_ep, _ = run_episode(env, RandomMechanism(env, rng=0))
        assert oracle_ep.mean_time_efficiency > random_ep.mean_time_efficiency
