"""FederatedSession delivery pipeline: deadline, validation, quarantine."""

import numpy as np
import pytest

from repro.datasets import make_task, partition_dataset
from repro.economics import sample_profiles
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultyEdgeNode,
    ReliabilityTracker,
)
from repro.fl import EdgeNode, FederatedSession, LocalTrainingConfig, ParameterServer
from repro.nn import McMahanCNN

pytestmark = pytest.mark.faults


def tiny_nodes(n_nodes=3, train=45, test=30):
    task = make_task("mnist", rng=0)
    train_ds, test_ds = task.train_test_split(train, test, rng=1)
    parts = partition_dataset(train_ds, n_nodes, scheme="iid", rng=2)
    profiles = sample_profiles(n_nodes, rng=3)
    cfg = LocalTrainingConfig(local_epochs=1, batch_size=15)
    server = ParameterServer(lambda: McMahanCNN(rng=4), test_ds)
    nodes = [
        EdgeNode(i, parts[i], profiles[i], cfg, rng=10 + i) for i in range(n_nodes)
    ]
    return server, nodes


class CrashingNode:
    """Minimal stand-in: quacks like an EdgeNode but never delivers."""

    def __init__(self, base):
        self.base = base
        self.node_id = base.node_id
        self.data_size = base.data_size
        self.last_delivery_time = None

    def local_update(self, model, global_state):
        return None


class NaNNode:
    def __init__(self, base):
        self.base = base
        self.node_id = base.node_id
        self.data_size = base.data_size

    def local_update(self, model, global_state):
        state = self.base.local_update(model, global_state)
        return {k: np.full_like(v, np.nan) for k, v in state.items()}


class SlowNode:
    def __init__(self, base, delivery_time):
        self.base = base
        self.node_id = base.node_id
        self.data_size = base.data_size
        self.last_delivery_time = delivery_time

    def local_update(self, model, global_state):
        return self.base.local_update(model, global_state)


class TestDeliveryPipeline:
    def test_crash_is_skipped_not_fatal(self):
        server, nodes = tiny_nodes()
        nodes[0] = CrashingNode(nodes[0])
        session = FederatedSession(server, nodes)
        result = session.run_round()
        assert result.crashed_ids == [0]
        assert result.delivered_ids == [1, 2]
        assert server.round_index == 1  # survivors were aggregated

    def test_nan_update_quarantined_by_validation(self):
        server, nodes = tiny_nodes()
        nodes[1] = NaNNode(nodes[1])
        session = FederatedSession(server, nodes, validate_updates=True)
        result = session.run_round()
        assert result.invalid_ids == [1]
        assert result.delivered_ids == [0, 2]
        assert np.isfinite(server.broadcast()["conv1.weight"]).all()

    def test_nan_update_without_validation_raises(self):
        server, nodes = tiny_nodes()
        nodes[1] = NaNNode(nodes[1])
        session = FederatedSession(server, nodes, validate_updates=False)
        with pytest.raises(ValueError, match="non-finite"):
            session.run_round()

    def test_deadline_drops_stragglers(self):
        server, nodes = tiny_nodes()
        nodes[2] = SlowNode(nodes[2], delivery_time=5.0)
        session = FederatedSession(server, nodes, deadline=2.0)
        result = session.run_round()
        assert result.late_ids == [2]
        assert result.delivered_ids == [0, 1]

    def test_all_fail_leaves_model_untouched(self):
        server, nodes = tiny_nodes()
        wrapped = [CrashingNode(n) for n in nodes]
        session = FederatedSession(server, wrapped)
        before = {k: v.copy() for k, v in server.broadcast().items()}
        result = session.run_round()
        assert result.delivered_ids == []
        assert result.crashed_ids == [0, 1, 2]
        assert server.round_index == 0  # no aggregation happened
        after = server.broadcast()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_reliability_quarantines_offender_next_round(self):
        server, nodes = tiny_nodes()
        nodes[1] = NaNNode(nodes[1])
        tracker = ReliabilityTracker(3)
        session = FederatedSession(server, nodes, reliability=tracker)
        first = session.run_round()
        assert first.invalid_ids == [1]
        second = session.run_round()
        assert second.quarantined_ids == [1]
        assert 1 not in second.participant_ids
        assert second.delivered_ids == [0, 2]

    def test_session_reset_resets_reliability(self):
        server, nodes = tiny_nodes()
        tracker = ReliabilityTracker(3)
        tracker.flag(0, 0)
        session = FederatedSession(server, nodes, reliability=tracker)
        session.reset()
        assert tracker.quarantined(1) == []

    def test_deadline_validated(self):
        server, nodes = tiny_nodes()
        with pytest.raises(ValueError, match="deadline"):
            FederatedSession(server, nodes, deadline=0.0)


class TestFaultyEdgeNodeInSession:
    def test_injected_faults_end_to_end(self):
        """A session over FaultyEdgeNodes survives a high mixed fault rate."""
        server, nodes = tiny_nodes()
        injector = FaultInjector(
            FaultConfig(crash_rate=0.25, straggler_rate=0.25, corrupt_rate=0.25, seed=5),
            n_nodes=3,
        )
        tracker = ReliabilityTracker(3)
        session = FederatedSession(
            server,
            [FaultyEdgeNode(n, injector) for n in nodes],
            deadline=2.0,
            validate_updates=True,
            reliability=tracker,
            injector=injector,
        )
        results = session.run(4)
        assert len(results) == 4
        seen_failures = sum(
            len(r.crashed_ids) + len(r.late_ids) + len(r.invalid_ids)
            for r in results
        )
        assert seen_failures > 0  # the injector actually fired
        assert np.isfinite(server.broadcast()["conv1.weight"]).all()

    def test_wrapper_delegates_node_surface(self):
        _, nodes = tiny_nodes()
        injector = FaultInjector(FaultConfig(), n_nodes=3)
        wrapped = FaultyEdgeNode(nodes[0], injector)
        assert wrapped.node_id == nodes[0].node_id
        assert wrapped.data_size == nodes[0].data_size
        assert wrapped.profile is nodes[0].profile
        response = wrapped.respond_to_price(1.0)
        assert response == nodes[0].respond_to_price(1.0)
