"""FaultInjector: seeded, counter-based crash/straggler/corrupt draws."""

import numpy as np
import pytest

from repro.faults import FaultConfig, FaultInjector, FaultType

pytestmark = pytest.mark.faults


class TestFaultConfig:
    def test_rates_validated(self):
        with pytest.raises(ValueError, match="crash_rate"):
            FaultConfig(crash_rate=1.5)
        with pytest.raises(ValueError, match="sum"):
            FaultConfig(crash_rate=0.5, straggler_rate=0.4, corrupt_rate=0.2)
        with pytest.raises(ValueError, match="straggler_factor"):
            FaultConfig(straggler_factor=0.9)
        with pytest.raises(ValueError, match="corrupt_mode"):
            FaultConfig(corrupt_mode="scramble")

    def test_mixed_splits_evenly(self):
        cfg = FaultConfig.mixed(0.3, seed=7)
        assert cfg.crash_rate == pytest.approx(0.1)
        assert cfg.straggler_rate == pytest.approx(0.1)
        assert cfg.corrupt_rate == pytest.approx(0.1)
        assert cfg.seed == 7


class TestDeterminism:
    def test_outcome_is_pure(self):
        inj = FaultInjector(FaultConfig.mixed(0.9, seed=3), n_nodes=8)
        inj.reset(2)
        inj.begin_round(5)
        first = [inj.outcome(i) for i in range(8)]
        second = [inj.outcome(i) for i in range(8)]
        assert first == second

    def test_two_injectors_agree(self):
        cfg = FaultConfig.mixed(0.6, seed=11)
        a = FaultInjector(cfg, n_nodes=6)
        b = FaultInjector(cfg, n_nodes=6)
        for episode in range(2):
            a.reset(episode)
            b.reset(episode)
            for rnd in range(4):
                a.begin_round(rnd)
                b.begin_round(rnd)
                assert [a.outcome(i) for i in range(6)] == [
                    b.outcome(i) for i in range(6)
                ]

    def test_episodes_differ(self):
        inj = FaultInjector(FaultConfig.mixed(0.9, seed=0), n_nodes=32)
        inj.reset(0)
        inj.begin_round(0)
        ep0 = [inj.outcome(i) for i in range(32)]
        inj.reset(1)
        inj.begin_round(0)
        ep1 = [inj.outcome(i) for i in range(32)]
        assert ep0 != ep1

    def test_zero_rate_never_faults(self):
        inj = FaultInjector(FaultConfig(), n_nodes=4)
        inj.begin_round(9)
        assert all(inj.outcome(i) is FaultType.NONE for i in range(4))
        assert inj.draw(range(4)) == {}


class TestDrawAndCounters:
    def test_draw_rates_roughly_match(self):
        inj = FaultInjector(
            FaultConfig(crash_rate=0.2, straggler_rate=0.2, corrupt_rate=0.2),
            n_nodes=50,
        )
        faulted = 0
        for rnd in range(40):
            inj.begin_round(rnd)
            faulted += len(inj.draw(range(50)))
        # 2000 draws at 60% total rate; allow a wide band.
        assert 1000 <= faulted <= 1400
        counts = inj.counters
        assert faulted == sum(counts.values())
        for key in ("crashes", "stragglers", "corruptions"):
            assert counts[key] > 200

    def test_split_groups(self):
        outcomes = {
            3: FaultType.CRASH,
            1: FaultType.CORRUPT,
            2: FaultType.STRAGGLER,
            0: FaultType.CRASH,
        }
        groups = FaultInjector.split(outcomes)
        assert groups == {
            "crashed": [0, 3],
            "stragglers": [2],
            "corrupt": [1],
        }

    def test_node_id_range_checked(self):
        inj = FaultInjector(FaultConfig.mixed(0.3), n_nodes=3)
        with pytest.raises(IndexError):
            inj.outcome(3)


class TestCorruptState:
    def test_nan_mode(self):
        inj = FaultInjector(FaultConfig(corrupt_rate=0.5), n_nodes=2)
        state = {"w": np.ones((2, 2)), "b": np.zeros(3)}
        bad = inj.corrupt_state(state)
        assert np.isnan(bad["w"]).all()
        assert np.isnan(bad["b"]).all()
        assert np.isfinite(state["w"]).all()  # the original is untouched

    def test_amplify_mode(self):
        inj = FaultInjector(
            FaultConfig(corrupt_rate=0.5, corrupt_mode="amplify", amplify_factor=-10.0),
            n_nodes=2,
        )
        state = {"w": np.ones(4)}
        bad = inj.corrupt_state(state)
        np.testing.assert_allclose(bad["w"], -10.0)
        assert np.isfinite(bad["w"]).all()
