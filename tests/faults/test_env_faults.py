"""EdgeLearningEnv under mid-round faults: escrow, clawback, quarantine,
reliability-aware state, and the defenses-off control."""

import numpy as np
import pytest

from repro.core import build_environment
from repro.faults import FaultConfig

pytestmark = pytest.mark.faults


def fault_env(
    rate=0.2,
    defenses=True,
    budget=40.0,
    n_nodes=5,
    seed=0,
    fault_seed=1,
    max_rounds=80,
    **kwargs,
):
    faults = FaultConfig.mixed(rate, seed=fault_seed) if rate else None
    return build_environment(
        task_name="mnist",
        n_nodes=n_nodes,
        budget=budget,
        accuracy_mode="surrogate",
        seed=seed,
        max_rounds=max_rounds,
        faults=faults,
        fault_defenses=defenses,
        **kwargs,
    ).env


def run_episode(env):
    env.reset()
    prices = np.sqrt(env.price_floors * env.price_caps)
    results = []
    while not env.done:
        *_, info = env.step(prices)
        results.append(info["step_result"])
    return results


class TestEscrowClawback:
    def test_spent_equals_delivered_payments(self):
        """The acceptance criterion: only delivered work is charged."""
        env = fault_env(rate=0.2)
        results = run_episode(env)
        delivered_total = sum(float(r.payments.sum()) for r in results if r.round_kept)
        assert env.ledger.spent == pytest.approx(delivered_total)
        assert env.ledger.clawback_total == pytest.approx(
            sum(r.clawback for r in results)
        )
        assert env.ledger.clawback_total > 0  # faults actually fired

    def test_defenses_off_pays_for_nothing(self):
        env = fault_env(rate=0.3, defenses=False)
        results = run_episode(env)
        assert env.ledger.clawback_total == 0.0
        # Crashed nodes keep their payment (the pathology clawback fixes).
        paid_crashes = [
            float(r.payments[r.crashed].sum()) for r in results if r.crashed
        ]
        assert paid_crashes and max(paid_crashes) > 0

    def test_payment_arrays_zeroed_for_failures(self):
        env = fault_env(rate=0.4)
        for r in run_episode(env):
            if not r.round_kept:
                continue
            failed = set(r.participants) - set(r.delivered)
            for i in failed:
                assert r.payments[i] == 0.0
                assert r.times[i] == 0.0

    def test_mixed_faults_stay_close_to_fault_free_accuracy(self):
        """20% mixed faults with defenses: within 5 points of fault-free."""
        clean = run_episode(fault_env(rate=0.0))
        faulty = run_episode(fault_env(rate=0.2))
        assert faulty  # completed without exception
        assert clean[-1].accuracy - faulty[-1].accuracy < 0.05

    def test_defenses_off_visibly_degrades(self):
        """Corrupt updates reaching aggregation drag accuracy down."""
        on = run_episode(fault_env(rate=0.3, fault_seed=2))
        off = run_episode(fault_env(rate=0.3, fault_seed=2, defenses=False))
        assert off[-1].accuracy < on[-1].accuracy - 0.03


class TestDeliveryReporting:
    def test_delivered_partitions_participants(self):
        env = fault_env(rate=0.4)
        for r in run_episode(env):
            if not r.round_kept:
                continue
            failed = sorted(set(r.crashed) | set(r.late) | set(r.corrupted))
            assert sorted(r.delivered + failed) == sorted(
                set(r.delivered) | set(failed)
            )
            assert set(r.delivered).isdisjoint(failed)
            assert set(r.delivered) | set(r.crashed) <= set(r.participants)

    def test_quarantined_never_participate(self):
        env = fault_env(rate=0.5, budget=100.0)
        saw_quarantine = False
        for r in run_episode(env):
            if r.quarantined:
                saw_quarantine = True
                assert set(r.quarantined).isdisjoint(r.participants)
        assert saw_quarantine

    def test_reliability_in_state_and_result(self):
        env = fault_env(rate=0.3)
        base_dim = 3 * env.n_nodes * env.config.history + 2
        assert env.state_dim == base_dim + env.n_nodes
        results = run_episode(env)
        last = results[-1]
        assert last.reliability is not None
        assert last.reliability.shape == (env.n_nodes,)
        assert np.all((last.reliability >= 0) & (last.reliability <= 1))
        # unreliable fleet -> scores visibly below 1
        assert last.reliability.min() < 1.0
        assert last.state.shape == (env.state_dim,)

    def test_fault_free_env_reports_empty_fault_fields(self):
        env = fault_env(rate=0.0)
        for r in run_episode(env):
            if r.round_kept:
                assert r.delivered == r.participants
            assert r.crashed == [] and r.late == [] and r.corrupted == []
            assert r.clawback == 0.0
            assert r.reliability is None


class TestReproducibility:
    def test_zero_rate_matches_fault_free_trajectory(self):
        """faults with all-zero rates reproduce the fault-free run."""
        clean = run_episode(fault_env(rate=0.0))
        zeroed = run_episode(
            build_environment(
                task_name="mnist",
                n_nodes=5,
                budget=40.0,
                accuracy_mode="surrogate",
                seed=0,
                max_rounds=80,
                faults=FaultConfig(),
            ).env
        )
        assert len(clean) == len(zeroed)
        for a, b in zip(clean, zeroed):
            assert a.accuracy == pytest.approx(b.accuracy)
            assert a.reward_exterior == pytest.approx(b.reward_exterior)
            assert a.reward_inner == pytest.approx(b.reward_inner)
            np.testing.assert_allclose(a.payments, b.payments)
            # States agree on everything but the appended reliability block.
            np.testing.assert_allclose(
                a.state[:-2], b.state[: a.state.shape[0] - 2]
            )
            np.testing.assert_allclose(a.state[-2:], b.state[-2:])

    def test_faulty_episodes_reproducible(self):
        def trace():
            env = fault_env(rate=0.4, fault_seed=9)
            out = []
            for _ in range(2):  # two episodes: per-episode substreams
                for r in run_episode(env):
                    out.append(
                        (
                            tuple(r.delivered),
                            tuple(r.crashed),
                            tuple(r.corrupted),
                            round(r.clawback, 12),
                        )
                    )
            return out

        assert trace() == trace()


class TestTelemetryCounters:
    def test_flatten_and_summary(self):
        from repro.experiments.telemetry import EpisodeRecorder

        env = fault_env(rate=0.4)
        recorder = EpisodeRecorder()
        env.reset()
        prices = np.sqrt(env.price_floors * env.price_caps)
        while not env.done:
            *_, info = env.step(prices)
            recorder.observe(info["step_result"])
        record = recorder.records[0]
        for key in (
            "n_delivered",
            "n_crashed",
            "n_late",
            "n_corrupted",
            "n_quarantined",
            "clawback",
            "min_reliability",
        ):
            assert key in record
        summary = recorder.fault_summary()
        assert summary["clawback_total"] == pytest.approx(
            env.ledger.clawback_total
        )
        assert (
            summary["crashes"] + summary["stragglers"] + summary["corruptions"]
        ) > 0
