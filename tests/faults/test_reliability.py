"""ReliabilityTracker: EWMA delivery rates and quarantine backoff."""

import numpy as np
import pytest

from repro.faults import ReliabilityTracker

pytestmark = pytest.mark.faults


class TestScores:
    def test_initially_fully_reliable(self):
        t = ReliabilityTracker(4)
        np.testing.assert_allclose(t.scores(), 1.0)

    def test_ewma_moves_toward_outcomes(self):
        t = ReliabilityTracker(2, alpha=0.5)
        t.record(0, False)
        assert t.scores()[0] == pytest.approx(0.5)
        t.record(0, False)
        assert t.scores()[0] == pytest.approx(0.25)
        t.record(0, True)
        assert t.scores()[0] == pytest.approx(0.625)
        assert t.scores()[1] == 1.0  # untouched node unchanged

    def test_scores_copy_is_defensive(self):
        t = ReliabilityTracker(2)
        s = t.scores()
        s[0] = -1.0
        assert t.scores()[0] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityTracker(0)
        with pytest.raises(ValueError):
            ReliabilityTracker(2, alpha=0.0)
        with pytest.raises(ValueError):
            ReliabilityTracker(2, quarantine_base=8, quarantine_cap=4)
        t = ReliabilityTracker(2)
        with pytest.raises(IndexError):
            t.record(2, True)


class TestQuarantine:
    def test_backoff_doubles_and_caps(self):
        t = ReliabilityTracker(1, quarantine_base=2, quarantine_cap=8)
        assert t.flag(0, round_index=0) == 2
        assert t.flag(0, round_index=10) == 4
        assert t.flag(0, round_index=20) == 8
        assert t.flag(0, round_index=30) == 8  # capped

    def test_quarantine_window(self):
        t = ReliabilityTracker(3, quarantine_base=2)
        t.flag(1, round_index=5)  # excluded from rounds 6 and 7
        assert not t.is_quarantined(1, 5)
        assert t.is_quarantined(1, 6)
        assert t.is_quarantined(1, 7)
        assert not t.is_quarantined(1, 8)
        assert t.quarantined(6) == [1]
        assert t.quarantined(8) == []

    def test_update_round_flags_offenders_immediately(self):
        t = ReliabilityTracker(4)
        flagged = t.update_round(0, delivered=[0, 1], failed=[2, 3], offenders=[3])
        assert flagged == [3]
        assert t.is_quarantined(3, 1)
        assert not t.is_quarantined(2, 1)  # one miss is not an offense

    def test_update_round_flags_low_scores(self):
        t = ReliabilityTracker(1, alpha=0.5, score_floor=0.4)
        t.update_round(0, delivered=[], failed=[0])  # score 0.5
        assert not t.is_quarantined(0, 1)
        flagged = t.update_round(1, delivered=[], failed=[0])  # score 0.25
        assert flagged == [0]
        assert t.is_quarantined(0, 2)

    def test_reset_forgets_everything(self):
        t = ReliabilityTracker(2)
        t.update_round(0, delivered=[], failed=[0], offenders=[0])
        t.reset()
        np.testing.assert_allclose(t.scores(), 1.0)
        assert t.quarantined(1) == []
        assert t.offenses().sum() == 0
