"""Partitioners: exact-cover properties and scheme-specific behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import (
    ArrayDataset,
    dirichlet_partition,
    iid_partition,
    partition_dataset,
    shard_partition,
)
from repro.datasets.partition import partition_sizes


def assert_exact_partition(parts, n_items):
    """Every index appears exactly once across all parts."""
    merged = np.concatenate(parts)
    assert merged.shape[0] == n_items
    np.testing.assert_array_equal(np.sort(merged), np.arange(n_items))


class TestIID:
    @given(
        n_items=st.integers(5, 200),
        n_nodes=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_partition(self, n_items, n_nodes, seed):
        parts = iid_partition(n_items, n_nodes, rng=seed)
        assert_exact_partition(parts, n_items)

    def test_balanced_sizes(self):
        sizes = partition_sizes(iid_partition(103, 10, rng=0))
        assert sizes.max() - sizes.min() <= 1

    def test_too_few_items(self):
        with pytest.raises(ValueError):
            iid_partition(2, 5)

    def test_determinism(self):
        a = iid_partition(50, 5, rng=3)
        b = iid_partition(50, 5, rng=3)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa, pb)


class TestShards:
    def test_exact_partition(self, rng):
        labels = rng.integers(0, 10, size=100)
        parts = shard_partition(labels, 5, shards_per_node=2, rng=0)
        assert_exact_partition(parts, 100)

    def test_label_concentration(self, rng):
        # Each node sees few distinct labels with 2 shards of sorted data.
        labels = np.repeat(np.arange(10), 50)  # 500 cleanly sorted samples
        parts = shard_partition(labels, 10, shards_per_node=2, rng=0)
        for part in parts:
            assert len(np.unique(labels[part])) <= 4

    def test_too_many_shards(self):
        with pytest.raises(ValueError):
            shard_partition(np.zeros(5, dtype=int), 3, shards_per_node=2)


class TestDirichlet:
    @given(seed=st.integers(0, 50), alpha=st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_exact_partition(self, seed, alpha):
        rng = np.random.default_rng(seed)
        labels = rng.integers(0, 5, size=120)
        parts = dirichlet_partition(labels, 4, alpha=alpha, rng=seed)
        assert_exact_partition(parts, 120)

    def test_min_per_node_respected(self, rng):
        labels = rng.integers(0, 10, size=200)
        parts = dirichlet_partition(labels, 5, alpha=0.3, rng=1, min_per_node=5)
        assert min(len(p) for p in parts) >= 5

    def test_low_alpha_skews_more(self):
        rng_labels = np.random.default_rng(0)
        labels = rng_labels.integers(0, 10, size=2000)

        def skew(alpha):
            parts = dirichlet_partition(labels, 10, alpha=alpha, rng=7)
            # Mean within-node label-histogram concentration (max share).
            shares = []
            for p in parts:
                hist = np.bincount(labels[p], minlength=10)
                shares.append(hist.max() / max(hist.sum(), 1))
            return np.mean(shares)

        assert skew(0.1) > skew(100.0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(10, dtype=int), 2, alpha=0.0)


class TestPartitionDataset:
    def make_dataset(self, n=60):
        rng = np.random.default_rng(0)
        return ArrayDataset(
            rng.normal(size=(n, 1, 4, 4)), rng.integers(0, 5, size=n)
        )

    @pytest.mark.parametrize("scheme", ["iid", "shards", "dirichlet"])
    def test_schemes(self, scheme):
        ds = self.make_dataset()
        parts = partition_dataset(ds, 4, scheme=scheme, rng=0)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == len(ds)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError, match="unknown partition scheme"):
            partition_dataset(self.make_dataset(), 4, scheme="sorted")

    def test_subsets_preserve_content(self):
        ds = self.make_dataset()
        parts = partition_dataset(ds, 3, scheme="iid", rng=0)
        all_y = np.concatenate([p.y for p in parts])
        assert sorted(all_y.tolist()) == sorted(ds.y.tolist())
