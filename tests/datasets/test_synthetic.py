"""Synthetic task generators."""

import numpy as np
import pytest

from repro.datasets import TASK_SPECS, SyntheticImageTask, TaskSpec, make_task


class TestTaskSpec:
    def test_registry_entries(self):
        assert set(TASK_SPECS) == {"mnist", "fashion_mnist", "cifar10"}
        assert TASK_SPECS["mnist"].image_shape == (1, 28, 28)
        assert TASK_SPECS["cifar10"].image_shape == (3, 32, 32)

    def test_difficulty_ordering(self):
        # Noise rises with task difficulty: MNIST < Fashion < CIFAR.
        assert (
            TASK_SPECS["mnist"].noise_std
            < TASK_SPECS["fashion_mnist"].noise_std
            < TASK_SPECS["cifar10"].noise_std
        )

    def test_model_assignment(self):
        assert TASK_SPECS["mnist"].model == "mcmahan_cnn"
        assert TASK_SPECS["cifar10"].model == "lenet5"

    def test_validation(self):
        with pytest.raises(ValueError):
            TaskSpec(name="bad", channels=0, image_size=28)
        with pytest.raises(ValueError):
            TaskSpec(name="bad", channels=1, image_size=28, noise_std=-1.0)


class TestSampling:
    def test_shapes_and_labels(self):
        task = make_task("mnist", rng=0)
        ds = task.sample(50, rng=1)
        assert ds.x.shape == (50, 1, 28, 28)
        assert ds.y.shape == (50,)
        assert ds.y.min() >= 0 and ds.y.max() < 10

    def test_cifar_shape(self):
        ds = make_task("cifar10", rng=0).sample(10, rng=1)
        assert ds.x.shape == (10, 3, 32, 32)

    def test_same_seed_same_data(self):
        t1, t2 = make_task("mnist", rng=5), make_task("mnist", rng=5)
        d1, d2 = t1.sample(20, rng=9), t2.sample(20, rng=9)
        np.testing.assert_allclose(d1.x, d2.x)
        np.testing.assert_array_equal(d1.y, d2.y)

    def test_different_task_seed_different_prototypes(self):
        t1, t2 = make_task("mnist", rng=1), make_task("mnist", rng=2)
        assert not np.allclose(t1._prototypes, t2._prototypes)

    def test_classes_distinguishable(self):
        # Noise-free prototypes of different classes must differ materially.
        task = make_task("mnist", rng=0)
        protos = task._prototypes[:, 0].reshape(10, -1)
        gram = protos @ protos.T
        diag = np.diag(gram)
        off = gram - np.diag(diag)
        assert diag.min() > np.abs(off).max()

    def test_unknown_task(self):
        with pytest.raises(ValueError, match="unknown task"):
            make_task("imagenet")

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            make_task("mnist", rng=0).sample(0)


class TestClassConditional:
    def test_exact_counts(self):
        task = make_task("mnist", rng=0)
        counts = np.array([3, 0, 0, 5, 0, 0, 0, 0, 2, 0])
        ds = task.sample_class_conditional(counts, rng=1)
        np.testing.assert_array_equal(ds.class_histogram(10), counts)

    def test_rejects_wrong_shape(self):
        task = make_task("mnist", rng=0)
        with pytest.raises(ValueError):
            task.sample_class_conditional(np.ones(5, dtype=int))

    def test_rejects_zero_total(self):
        task = make_task("mnist", rng=0)
        with pytest.raises(ValueError):
            task.sample_class_conditional(np.zeros(10, dtype=int))


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = make_task("mnist", rng=0).train_test_split(30, 10, rng=1)
        assert len(train) == 30 and len(test) == 10

    def test_independent_draws(self):
        train, test = make_task("mnist", rng=0).train_test_split(10, 10, rng=1)
        assert not np.allclose(train.x, test.x)
