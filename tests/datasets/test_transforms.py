"""Normalization transforms."""

import numpy as np
import pytest

from repro.datasets import ArrayDataset, normalize_images, per_channel_stats
from repro.datasets.transforms import normalize_dataset


class TestStats:
    def test_values(self, rng):
        x = rng.normal(loc=3.0, scale=2.0, size=(50, 2, 5, 5))
        mean, std = per_channel_stats(x)
        assert mean.shape == (2,)
        np.testing.assert_allclose(mean, x.mean(axis=(0, 2, 3)))
        np.testing.assert_allclose(std, x.std(axis=(0, 2, 3)))

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            per_channel_stats(np.zeros((5, 4, 4)))


class TestNormalize:
    def test_standardizes(self, rng):
        x = rng.normal(loc=5.0, scale=3.0, size=(100, 1, 4, 4))
        mean, std = per_channel_stats(x)
        z = normalize_images(x, mean, std)
        assert z.mean() == pytest.approx(0.0, abs=1e-8)
        assert z.std() == pytest.approx(1.0, abs=1e-4)

    def test_channel_mismatch(self, rng):
        x = rng.normal(size=(10, 3, 4, 4))
        with pytest.raises(ValueError):
            normalize_images(x, np.zeros(2), np.ones(2))

    def test_normalize_dataset(self, rng):
        ds = ArrayDataset(
            rng.normal(loc=2.0, size=(30, 1, 4, 4)), rng.integers(0, 3, size=30)
        )
        out = normalize_dataset(ds)
        assert out.x.mean() == pytest.approx(0.0, abs=1e-8)
        np.testing.assert_array_equal(out.y, ds.y)
