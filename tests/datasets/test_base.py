"""ArrayDataset and DataLoader."""

import numpy as np
import pytest

from repro.datasets import ArrayDataset, DataLoader


def make_dataset(n=20, c=1, size=4, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.normal(size=(n, c, size, size)), rng.integers(0, classes, size=n)
    )


class TestArrayDataset:
    def test_basic_properties(self):
        ds = make_dataset(n=10, c=3, size=8)
        assert len(ds) == 10
        assert ds.image_shape == (3, 8, 8)
        assert 1 <= ds.num_classes <= 3

    def test_getitem(self):
        ds = make_dataset()
        x, y = ds[5]
        assert x.shape == (1, 4, 4)
        np.testing.assert_allclose(x, ds.x[5])

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 4, 4)), np.zeros(5))  # 3-D x
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 1, 4, 4)), np.zeros((5, 1)))  # 2-D y
        with pytest.raises(ValueError):
            ArrayDataset(np.zeros((5, 1, 4, 4)), np.zeros(4))  # count mismatch

    def test_subset(self):
        ds = make_dataset()
        sub = ds.subset([1, 3, 5])
        assert len(sub) == 3
        np.testing.assert_allclose(sub.x[1], ds.x[3])

    def test_subset_bounds(self):
        ds = make_dataset(n=5)
        with pytest.raises(IndexError):
            ds.subset([10])
        with pytest.raises(IndexError):
            ds.subset([-1])

    def test_class_histogram(self):
        ds = ArrayDataset(np.zeros((4, 1, 2, 2)), np.array([0, 0, 2, 2]))
        np.testing.assert_array_equal(ds.class_histogram(3), [2, 0, 2])

    def test_nbytes_positive(self):
        assert make_dataset().nbytes() > 0


class TestDataLoader:
    def test_batch_shapes(self):
        ds = make_dataset(n=10)
        batches = list(DataLoader(ds, batch_size=4, shuffle=False, rng=0))
        assert [b[0].shape[0] for b in batches] == [4, 4, 2]

    def test_drop_last(self):
        ds = make_dataset(n=10)
        loader = DataLoader(ds, batch_size=4, drop_last=True, rng=0)
        assert len(loader) == 2
        assert sum(b[0].shape[0] for b in loader) == 8

    def test_len(self):
        ds = make_dataset(n=10)
        assert len(DataLoader(ds, batch_size=3, rng=0)) == 4

    def test_covers_all_samples(self):
        ds = make_dataset(n=17)
        loader = DataLoader(ds, batch_size=5, rng=0)
        ys = np.concatenate([y for _, y in loader])
        assert sorted(ys.tolist()) == sorted(ds.y.tolist())

    def test_shuffle_changes_across_epochs(self):
        ds = make_dataset(n=32)
        loader = DataLoader(ds, batch_size=32, rng=0)
        first = next(iter(loader))[1]
        second = next(iter(loader))[1]
        assert not np.array_equal(first, second)

    def test_no_shuffle_is_ordered(self):
        ds = make_dataset(n=8)
        loader = DataLoader(ds, batch_size=8, shuffle=False, rng=0)
        _, y = next(iter(loader))
        np.testing.assert_array_equal(y, ds.y)

    def test_seeded_determinism(self):
        ds = make_dataset(n=16)
        a = [y for _, y in DataLoader(ds, batch_size=4, rng=5)]
        b = [y for _, y in DataLoader(ds, batch_size=4, rng=5)]
        for ya, yb in zip(a, b):
            np.testing.assert_array_equal(ya, yb)

    def test_invalid_batch_size(self):
        with pytest.raises(ValueError):
            DataLoader(make_dataset(), batch_size=0)
