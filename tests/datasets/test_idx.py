"""IDX binary loaders (real-dataset hook)."""

import gzip
import struct

import numpy as np
import pytest

from repro.datasets.idx import (
    find_mnist,
    load_idx_dataset,
    load_mnist_if_available,
    read_idx,
)


def write_idx(path, array, dtype_code=0x08):
    """Serialize an array in IDX format (uint8 by default)."""
    array = np.asarray(array)
    header = bytes([0, 0, dtype_code, array.ndim])
    dims = struct.pack(f">{array.ndim}I", *array.shape)
    payload = array.astype(np.uint8).tobytes()
    data = header + dims + payload
    if str(path).endswith(".gz"):
        with gzip.open(path, "wb") as handle:
            handle.write(data)
    else:
        path.write_bytes(data)
    return path


@pytest.fixture
def mnist_dir(tmp_path, rng):
    images = rng.integers(0, 256, size=(12, 28, 28))
    labels = rng.integers(0, 10, size=12)
    write_idx(tmp_path / "train-images-idx3-ubyte", images)
    write_idx(tmp_path / "train-labels-idx1-ubyte", labels)
    return tmp_path, images, labels


class TestReadIdx:
    def test_roundtrip_3d(self, tmp_path, rng):
        original = rng.integers(0, 256, size=(5, 4, 4))
        path = write_idx(tmp_path / "x.idx", original)
        np.testing.assert_array_equal(read_idx(path), original)

    def test_roundtrip_gzip(self, tmp_path, rng):
        original = rng.integers(0, 256, size=(3, 2, 2))
        path = write_idx(tmp_path / "x.idx.gz", original)
        np.testing.assert_array_equal(read_idx(path), original)

    def test_roundtrip_1d(self, tmp_path, rng):
        labels = rng.integers(0, 10, size=7)
        path = write_idx(tmp_path / "y.idx", labels)
        np.testing.assert_array_equal(read_idx(path), labels)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_idx(tmp_path / "absent.idx")

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x01\x02\x08\x01" + struct.pack(">I", 1) + b"\x00")
        with pytest.raises(ValueError, match="magic"):
            read_idx(path)

    def test_unknown_dtype(self, tmp_path):
        path = tmp_path / "bad.idx"
        path.write_bytes(b"\x00\x00\xff\x01" + struct.pack(">I", 1) + b"\x00")
        with pytest.raises(ValueError, match="dtype"):
            read_idx(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "trunc.idx"
        path.write_bytes(b"\x00\x00\x08\x01" + struct.pack(">I", 100) + b"\x00")
        with pytest.raises(ValueError, match="truncated"):
            read_idx(path)


class TestLoadDataset:
    def test_shapes_and_channel_axis(self, mnist_dir):
        root, images, labels = mnist_dir
        ds = load_idx_dataset(
            root / "train-images-idx3-ubyte", root / "train-labels-idx1-ubyte"
        )
        assert ds.x.shape == (12, 1, 28, 28)
        np.testing.assert_array_equal(ds.y, labels)

    def test_normalization_range(self, mnist_dir):
        root, _, _ = mnist_dir
        ds = load_idx_dataset(
            root / "train-images-idx3-ubyte", root / "train-labels-idx1-ubyte"
        )
        assert -1.0 <= ds.x.min() and ds.x.max() <= 1.0

    def test_no_normalize(self, mnist_dir):
        root, images, _ = mnist_dir
        ds = load_idx_dataset(
            root / "train-images-idx3-ubyte",
            root / "train-labels-idx1-ubyte",
            normalize=False,
        )
        np.testing.assert_array_equal(ds.x[:, 0], images.astype(float))

    def test_count_mismatch(self, tmp_path, rng):
        write_idx(tmp_path / "imgs.idx", rng.integers(0, 256, size=(3, 4, 4)))
        write_idx(tmp_path / "lbls.idx", rng.integers(0, 10, size=5))
        with pytest.raises(ValueError, match="mismatch"):
            load_idx_dataset(tmp_path / "imgs.idx", tmp_path / "lbls.idx")


class TestDiscovery:
    def test_find_mnist(self, mnist_dir):
        root, _, _ = mnist_dir
        pair = find_mnist(root, train=True)
        assert pair is not None
        assert find_mnist(root, train=False) is None  # no t10k files

    def test_load_if_available(self, mnist_dir):
        root, _, _ = mnist_dir
        ds = load_mnist_if_available(root)
        assert ds is not None and len(ds) == 12

    def test_absent_returns_none(self, tmp_path):
        assert load_mnist_if_available(tmp_path) is None

    def test_trains_with_real_pipeline(self, mnist_dir):
        """A loaded IDX dataset plugs straight into the FL substrate."""
        from repro.fl.metrics import evaluate
        from repro.nn import McMahanCNN

        root, _, _ = mnist_dir
        ds = load_mnist_if_available(root)
        result = evaluate(McMahanCNN(rng=0), ds)
        assert result.n_samples == 12
