"""Tournament grid lowering: cell counts, ordering, hermetic items."""

from __future__ import annotations

import pytest

from repro.tournament.grid import (
    FaultProfile,
    PopulationSpec,
    TournamentGrid,
    default_grid,
    smoke_grid,
)

pytestmark = pytest.mark.tournament


class TestFaultProfile:
    def test_clean_profile_has_no_fault_config(self):
        clean = FaultProfile(name="clean")
        assert not clean.faulted
        assert clean.fault_config() is None

    def test_faulted_profile_builds_mixed_config(self):
        faulted = FaultProfile(name="mixed", rate=0.3, fault_seed=4)
        assert faulted.faulted
        config = faulted.fault_config()
        assert config is not None


class TestGrid:
    def test_smoke_grid_cell_count(self):
        # 2 mechanisms × 1 population × 1 budget × 2 fault profiles × 1 seed
        assert len(smoke_grid().items()) == 4

    def test_default_grid_cell_count(self):
        # paper_n5 runs all 9 mechanisms; clustered_n1000 only the 6
        # static ones: (9 + 6) × 2 budgets × 2 faults × 2 seeds = 120.
        assert len(default_grid().items()) == 120

    def test_population_filter_skips_mechanisms(self):
        grid = TournamentGrid(
            mechanisms=("greedy", "random"),
            populations=(
                PopulationSpec(name="small", n_nodes=4),
                PopulationSpec(
                    name="greedy_only", n_nodes=4, mechanisms=("greedy",)
                ),
            ),
            budgets=(10.0,),
            fault_profiles=(FaultProfile(name="clean"),),
            n_seeds=1,
        )
        items = grid.items()
        assert len(items) == 3
        pairs = {(i["key"]["mechanism"], i["key"]["population"]) for i in items}
        assert ("random", "greedy_only") not in pairs

    def test_items_are_hermetic_and_unique(self):
        items = default_grid(seed=3).items()
        streams = [item["rng_stream"] for item in items]
        assert len(set(streams)) == len(streams)
        for item in items:
            assert item["kind"] == "sweep"
            assert item["rng_root"] == 3
            # Nothing but JSON-able primitives crosses the pool boundary.
            assert isinstance(item["build"], dict)

    def test_budget_scale_applied(self):
        items = default_grid().items()
        big = [i for i in items if i["key"]["population"] == "clustered_n1000"]
        assert all(
            i["key"]["budget"] == i["key"]["base_budget"] * 200.0 for i in big
        )
        assert all(i["build"]["budget"] == i["key"]["budget"] for i in big)

    def test_deterministic_item_order(self):
        a = [i["rng_stream"] for i in default_grid().items()]
        b = [i["rng_stream"] for i in default_grid().items()]
        assert a == b

    def test_to_dict_is_jsonable(self):
        import json

        json.dumps(default_grid().to_dict())

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one mechanism"):
            TournamentGrid(
                mechanisms=(),
                populations=(PopulationSpec(name="p", n_nodes=4),),
                budgets=(1.0,),
                fault_profiles=(FaultProfile(name="clean"),),
            )
        with pytest.raises(ValueError, match="n_seeds"):
            TournamentGrid(
                mechanisms=("greedy",),
                populations=(PopulationSpec(name="p", n_nodes=4),),
                budgets=(1.0,),
                fault_profiles=(FaultProfile(name="clean"),),
                n_seeds=0,
            )
