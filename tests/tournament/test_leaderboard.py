"""Leaderboard aggregation: ranking, regret, pooled efficiency, schema."""

from __future__ import annotations

import pytest

from repro.tournament.leaderboard import (
    LEADERBOARD_SCHEMA_VERSION,
    build_leaderboard,
)

pytestmark = pytest.mark.tournament


def _cell(mechanism, accuracy, spent, budget=10.0, faulted=False,
          seed_offset=0, rounds=5, learning_time=50.0):
    return {
        "key": {
            "mechanism": mechanism,
            "population": "p",
            "n_nodes": 4,
            "base_budget": budget,
            "budget": budget,
            "fault_profile": "mixed" if faulted else "clean",
            "faulted": faulted,
            "seed_offset": seed_offset,
        },
        "eval_episodes": [
            {
                "final_accuracy": accuracy,
                "budget_spent": spent,
                "rounds": rounds,
                "total_learning_time": learning_time,
            }
        ],
    }


class TestBuildLeaderboard:
    def test_ranking_by_accuracy_then_name(self):
        board = build_leaderboard(
            [
                _cell("slow", 0.5, 5.0),
                _cell("fast", 0.9, 5.0),
                _cell("also_fast", 0.9, 5.0),
            ]
        )
        assert [r.mechanism for r in board.rows] == [
            "also_fast", "fast", "slow",
        ]
        assert [r.rank for r in board.rows] == [1, 2, 3]

    def test_fault_regret_is_clean_minus_faulted(self):
        board = build_leaderboard(
            [
                _cell("m", 0.8, 5.0, faulted=False),
                _cell("m", 0.6, 5.0, faulted=True),
            ]
        )
        assert board.rows[0].fault_regret == pytest.approx(0.2)

    def test_regret_zero_without_both_regimes(self):
        board = build_leaderboard([_cell("m", 0.8, 5.0)])
        assert board.rows[0].fault_regret == 0.0

    def test_efficiency_is_pooled_ratio(self):
        # One episode spends nothing: the pooled ratio must stay finite
        # (mean accuracy / mean fraction), not explode like a mean of
        # per-episode ratios would.
        board = build_leaderboard(
            [
                _cell("m", 0.8, 5.0, budget=10.0),
                _cell("m", 0.2, 0.0, budget=10.0, seed_offset=1),
            ]
        )
        row = board.rows[0]
        assert row.budget_efficiency == pytest.approx(0.5 / 0.25)

    def test_ci_zero_for_single_seed(self):
        board = build_leaderboard([_cell("m", 0.8, 5.0)])
        assert board.rows[0].accuracy_ci95 == 0.0

    def test_ci_positive_across_seeds(self):
        board = build_leaderboard(
            [
                _cell("m", 0.7, 5.0, seed_offset=0),
                _cell("m", 0.9, 5.0, seed_offset=1),
            ]
        )
        assert board.rows[0].accuracy_ci95 > 0.0

    def test_round_time_is_learning_time_per_round(self):
        board = build_leaderboard(
            [_cell("m", 0.8, 5.0, rounds=10, learning_time=40.0)]
        )
        assert board.rows[0].mean_round_time == pytest.approx(4.0)


class TestSchema:
    def test_payload_shape(self):
        board = build_leaderboard(
            [_cell("m", 0.8, 5.0)], populations=[{"name": "p", "n_nodes": 4}]
        )
        payload = board.to_payload()
        assert payload["schema_version"] == LEADERBOARD_SCHEMA_VERSION
        assert payload["populations"] == [{"name": "p", "n_nodes": 4}]
        (row,) = payload["rows"]
        assert set(row) == {
            "rank", "mechanism", "mean_accuracy", "accuracy_ci95",
            "budget_efficiency", "mean_round_time", "fault_regret",
            "episodes", "cells",
        }

    def test_row_lookup(self):
        board = build_leaderboard([_cell("m", 0.8, 5.0)])
        assert board.row("m").mechanism == "m"
        with pytest.raises(KeyError, match="not on the leaderboard"):
            board.row("absent")

    def test_markdown_renders_every_row(self):
        board = build_leaderboard(
            [_cell("a", 0.9, 5.0), _cell("b", 0.7, 5.0)]
        )
        text = board.to_markdown()
        assert "| 1 | a |" in text and "| 2 | b |" in text
