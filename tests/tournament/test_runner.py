"""End-to-end tournament: fingerprint invariance, journal resume, CLI glue."""

from __future__ import annotations

import pytest

from repro.tournament import (
    describe_population,
    render_tournament,
    run_tournament,
    smoke_grid,
)
from repro.tournament.grid import PopulationSpec

pytestmark = pytest.mark.tournament


@pytest.fixture(scope="module")
def smoke_result():
    """One in-process smoke tournament shared across the module's tests."""
    return run_tournament(smoke_grid(seed=0), workers=1)


class TestRunTournament:
    def test_fingerprint_identical_across_worker_counts(self, smoke_result):
        reference = smoke_result.fingerprint()
        for workers in (2, 4):
            result = run_tournament(smoke_grid(seed=0), workers=workers)
            assert result.fingerprint() == reference

    def test_journal_resume_reproduces_fingerprint(self, smoke_result, tmp_path):
        journal = tmp_path / "tournament.jsonl"
        live = run_tournament(smoke_grid(seed=0), workers=1, journal=journal)
        assert live.fingerprint() == smoke_result.fingerprint()
        # Second run over the same journal replays the settled items
        # instead of re-executing them and must reproduce the
        # uninterrupted fingerprint bit for bit.
        from repro.resilience.journal import read_journal
        from repro.resilience.sweep import KIND_ITEM_OK

        settled = len(read_journal(journal).of_kind(KIND_ITEM_OK))
        assert settled == len(live.sweep.items)
        replayed = run_tournament(
            smoke_grid(seed=0), workers=1, journal=journal
        )
        assert replayed.fingerprint() == smoke_result.fingerprint()
        # No item was re-executed: the settled-item log did not grow.
        assert len(read_journal(journal).of_kind(KIND_ITEM_OK)) == settled

    def test_leaderboard_covers_grid_mechanisms(self, smoke_result):
        names = {row.mechanism for row in smoke_result.leaderboard.rows}
        assert names == set(smoke_result.grid.mechanisms)

    def test_payload_shape(self, smoke_result):
        payload = smoke_result.to_payload()
        assert payload["cells"] == 4
        assert payload["fingerprint"] == smoke_result.fingerprint()
        assert payload["leaderboard"]["rows"]

    def test_render_mentions_every_mechanism(self, smoke_result):
        text = render_tournament(smoke_result)
        assert "# Tournament leaderboard" in text
        for mechanism in smoke_result.grid.mechanisms:
            assert mechanism in text
        assert smoke_result.fingerprint() in text


class TestDescribePopulation:
    def test_plain_population(self):
        entry = describe_population(
            PopulationSpec(name="p", n_nodes=6), seed=0
        )
        assert entry["n_nodes"] == 6
        assert "cluster_sizes" not in entry

    def test_clustered_population_reports_tiers(self):
        entry = describe_population(
            PopulationSpec(name="c", n_nodes=40, n_clusters=4), seed=0
        )
        assert sum(entry["cluster_sizes"]) == 40
        assert len(entry["cluster_mean_price_cap"]) == 4


class TestExperimentRegistration:
    def test_tournament_registered(self):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("tournament")
        assert spec.exp_id == "tournament"

    def test_bench_smoke_report_gate(self):
        from repro.bench.tournament import run_tournament_benchmark

        report, result = run_tournament_benchmark(
            worker_counts=(1,), smoke=True, seed=0
        )
        assert report["fingerprints_identical"]
        assert report["fingerprint"] == result.fingerprint()
        assert report["leaderboard"]["rows"]
