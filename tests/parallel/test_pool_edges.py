"""Pool edge paths: respawn exhaustion, post-quarantine ordering, callbacks."""

from __future__ import annotations

import pytest

from repro.parallel.pool import ItemFailure, PoolConfig, run_items
from repro.resilience.journal import RunJournal, read_journal

pytestmark = [pytest.mark.parallel, pytest.mark.resilience]


class TestRespawnExhaustion:
    def test_spent_budget_quarantines_remainder_with_reason(self):
        # Two crash items kill both workers; with zero respawns allowed
        # the echo items can never run and must be quarantined loudly,
        # not dropped.
        items = [
            {"kind": "crash", "exitcode": 7},
            {"kind": "crash", "exitcode": 7},
            {"kind": "echo", "value": "starved-a"},
            {"kind": "echo", "value": "starved-b"},
        ]
        report = run_items(
            items,
            config=PoolConfig(
                workers=2,
                max_retries=0,
                max_respawns=0,
                backoff_base=0.01,
            ),
        )
        assert not report.ok
        assert report.results == [None] * 4
        assert {f.index for f in report.quarantined} == {0, 1, 2, 3}
        starved = [f for f in report.quarantined if f.index >= 2]
        assert starved
        for failure in starved:
            assert any("pool exhausted" in e for e in failure.errors)

    def test_budget_covers_kills_when_sized_for_them(self):
        items = [
            {"kind": "crash", "exitcode": 7},
            {"kind": "echo", "value": "fine"},
            {"kind": "echo", "value": "also-fine"},
        ]
        report = run_items(
            items,
            config=PoolConfig(
                workers=2,
                max_retries=0,
                max_respawns=2,
                backoff_base=0.01,
            ),
        )
        assert [f.index for f in report.quarantined] == [0]
        assert report.results[1]["value"] == "fine"
        assert report.results[2]["value"] == "also-fine"


class TestQuarantineThenRequeue:
    def test_items_after_a_quarantine_complete_in_submission_order(self):
        items = [{"kind": "crash", "exitcode": 3}] + [
            {"kind": "echo", "value": i} for i in range(5)
        ]
        report = run_items(
            items,
            config=PoolConfig(
                workers=2,
                max_retries=0,
                max_respawns=4,
                backoff_base=0.01,
            ),
        )
        assert [f.index for f in report.quarantined] == [0]
        assert report.results[0] is None
        assert [r["value"] for r in report.results[1:]] == list(range(5))

    def test_retry_requeues_behind_ready_items(self):
        # In-process path: a failing item retries after its backoff while
        # later items keep the submission-order result layout.
        items = [
            {"kind": "fail", "message": "always"},
            {"kind": "echo", "value": 1},
        ]
        report = run_items(
            items,
            config=PoolConfig(workers=1, max_retries=2, backoff_base=0.001),
        )
        assert report.results[0] is None
        assert report.results[1]["value"] == 1
        assert report.quarantined[0].attempts == 3


class TestCallbacks:
    def test_on_result_and_on_quarantine_fire_per_settled_item(self):
        seen_ok, seen_bad = [], []
        items = [
            {"kind": "echo", "value": 0},
            {"kind": "fail", "message": "nope"},
            {"kind": "echo", "value": 2},
        ]
        report = run_items(
            items,
            config=PoolConfig(workers=1, max_retries=0),
            on_result=lambda i, v: seen_ok.append((i, v["value"])),
            on_quarantine=lambda f: seen_bad.append(f.index),
        )
        assert seen_ok == [(0, 0), (2, 2)]
        assert seen_bad == [1]
        assert [f.index for f in report.quarantined] == [1]

    def test_should_stop_freezes_dispatch_and_reports_interrupted(self):
        report = run_items(
            [{"kind": "echo", "value": i} for i in range(4)],
            config=PoolConfig(workers=1),
            should_stop=lambda: True,
        )
        assert report.interrupted
        assert not report.ok
        assert report.results == [None] * 4
        assert report.quarantined == []


class TestTimeoutExcludesColdStart:
    def test_timeout_below_cold_start_still_delivers_healthy_items(self):
        # Worker cold start (interpreter + numpy import) takes well over
        # 0.3s; the start-ack protocol must keep that off the item's
        # clock or healthy items get killed as hangs on a loaded host.
        items = [{"kind": "echo", "value": i} for i in range(4)]
        report = run_items(
            items,
            config=PoolConfig(
                workers=2,
                max_retries=0,
                max_respawns=0,
                backoff_base=0.01,
                item_timeout=0.3,
            ),
        )
        assert report.ok, [f.errors for f in report.quarantined]
        assert [r["value"] for r in report.results] == list(range(4))

    def test_hang_after_start_is_still_killed(self):
        items = [{"kind": "hang", "seconds": 60.0}]
        report = run_items(
            items,
            config=PoolConfig(
                workers=2,
                max_retries=0,
                backoff_base=0.01,
                item_timeout=0.3,
            ),
        )
        assert [f.index for f in report.quarantined] == [0]
        assert any("died" in e for e in report.quarantined[0].errors)

    def test_negative_startup_grace_rejected(self):
        with pytest.raises(ValueError, match="startup_grace"):
            PoolConfig(startup_grace=-1.0)


class TestItemFailureJournalRoundTrip:
    def test_failure_survives_journal_round_trip(self, tmp_path):
        failure = ItemFailure(
            index=11,
            attempts=3,
            errors=["worker 0 died (exitcode=9) while running item 11"] * 3,
        )
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.append(
                "item_quarantined",
                {
                    "failure": {
                        "index": failure.index,
                        "attempts": failure.attempts,
                        "errors": list(failure.errors),
                    }
                },
            )
        record = read_journal(path).records[0]
        back = ItemFailure(
            index=int(record.data["failure"]["index"]),
            attempts=int(record.data["failure"]["attempts"]),
            errors=list(record.data["failure"]["errors"]),
        )
        assert back == failure
