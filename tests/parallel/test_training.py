"""Parallel training engine: determinism, rounds, checkpoints, guards.

The cheap contracts (purity in the seed, async≡deterministic at one
worker, checkpoint/resume bit-identity, validation errors) run entirely
in-process (``workers=1`` uses the pool's in-process path — no spawn
cost).  The tests that launch real worker processes carry the ``train``
marker on top of ``parallel``; they are the executable form of the
worker-count-invariance claim and are slow on 1-core hosts.
"""

from __future__ import annotations

import pytest

from repro.core.builder import build_environment
from repro.experiments.mechanisms import make_mechanism
from repro.parallel.training import (
    DEFAULT_SYNC_EVERY,
    _round_boundaries,
    train_parallel,
    training_fingerprint,
    training_rows,
)

pytestmark = pytest.mark.parallel


def _setup(mech="chiron", rng_seed=0, n_nodes=4):
    build = build_environment(
        task_name="mnist",
        n_nodes=n_nodes,
        budget=15.0,
        accuracy_mode="surrogate",
        seed=123,
        max_rounds=25,
    )
    mechanism = make_mechanism(mech, build.env, rng=rng_seed, tier="quick")
    return build.env, mechanism


def _fingerprint(episodes=6, *, seed=11, workers=1, **kwargs):
    env, mechanism = _setup()
    history = train_parallel(
        env, mechanism, episodes, seed=seed, workers=workers, **kwargs
    )
    return training_fingerprint(history)


class TestRoundBoundaries:
    def test_exact_multiple(self):
        assert list(_round_boundaries(8, 4, 0)) == [(0, 4), (4, 8)]

    def test_ragged_tail(self):
        assert list(_round_boundaries(7, 3, 0)) == [(0, 3), (3, 6), (6, 7)]

    def test_resume_offset(self):
        assert list(_round_boundaries(8, 2, 4)) == [(4, 6), (6, 8)]


class TestDeterminism:
    def test_pure_function_of_seed(self):
        assert _fingerprint(seed=11) == _fingerprint(seed=11)
        assert _fingerprint(seed=11) != _fingerprint(seed=12)

    def test_async_equals_deterministic_at_one_worker(self):
        # At workers=1 arrival order is submission order, so the async
        # path must coincide with the deterministic one exactly.
        assert _fingerprint(mode="async") == _fingerprint(mode="deterministic")

    def test_sync_every_is_part_of_the_contract(self):
        # The update cadence shapes the trajectory: a different
        # sync_every is a *different* (still deterministic) run.
        assert _fingerprint(sync_every=2) == _fingerprint(sync_every=2)
        assert _fingerprint(sync_every=2) != _fingerprint(sync_every=6)

    def test_rows_shape(self):
        env, mechanism = _setup()
        history = train_parallel(env, mechanism, 3, seed=5, workers=1)
        rows = training_rows(history)
        assert [r["episode"] for r in rows] == [0, 1, 2]
        assert all("reward_exterior" in r["result"] for r in rows)
        assert all(
            isinstance(v, float)
            for r in rows
            for v in r["diagnostics"].values()
        )


class TestValidation:
    def test_seed_required(self):
        env, mechanism = _setup()
        with pytest.raises(ValueError, match="seed"):
            train_parallel(env, mechanism, 2, seed=None)

    def test_unknown_mode_rejected(self):
        env, mechanism = _setup()
        with pytest.raises(ValueError, match="mode"):
            train_parallel(env, mechanism, 2, seed=0, mode="eventually")

    def test_unsupported_mechanism_rejected(self):
        env, mechanism = _setup(mech="greedy")
        with pytest.raises(TypeError, match="run_sweep"):
            train_parallel(env, mechanism, 2, seed=0)

    def test_checkpoint_args_must_pair(self, tmp_path):
        env, mechanism = _setup()
        with pytest.raises(ValueError, match="together"):
            train_parallel(
                env, mechanism, 2, seed=0, checkpoint_every=1
            )
        with pytest.raises(ValueError, match="together"):
            train_parallel(
                env, mechanism, 2, seed=0, checkpoint_dir=str(tmp_path)
            )

    def test_default_sync_every_is_constant(self):
        # Deriving the cadence from the worker count would silently break
        # worker invariance; pin it as a plain constant.
        assert DEFAULT_SYNC_EVERY == 4


class TestCheckpointResume:
    def test_interrupted_run_resumes_bitwise(self, tmp_path):
        from repro.resilience.training import (
            checkpoint_digest,
            latest_checkpoint,
        )

        golden_dir = tmp_path / "golden"
        env, mechanism = _setup()
        golden = train_parallel(
            env,
            mechanism,
            8,
            seed=21,
            workers=1,
            sync_every=2,
            checkpoint_every=2,
            checkpoint_dir=str(golden_dir),
        )

        # "Crash" after 4 episodes: a fresh process re-runs the same
        # call against the same directory and must continue, not restart.
        part_dir = tmp_path / "part"
        env, mechanism = _setup()
        train_parallel(
            env,
            mechanism,
            4,
            seed=21,
            workers=1,
            sync_every=2,
            checkpoint_every=2,
            checkpoint_dir=str(part_dir),
        )
        env, mechanism = _setup()
        resumed = train_parallel(
            env,
            mechanism,
            8,
            seed=21,
            workers=1,
            sync_every=2,
            checkpoint_every=2,
            checkpoint_dir=str(part_dir),
        )
        assert training_fingerprint(resumed) == training_fingerprint(golden)
        assert checkpoint_digest(
            latest_checkpoint(part_dir)
        ) == checkpoint_digest(latest_checkpoint(golden_dir))

    def test_completed_run_returns_history_without_training(self, tmp_path):
        env, mechanism = _setup()
        first = train_parallel(
            env,
            mechanism,
            4,
            seed=3,
            workers=1,
            sync_every=2,
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
        )
        env, mechanism = _setup()
        again = train_parallel(
            env,
            mechanism,
            4,
            seed=3,
            workers=1,
            sync_every=2,
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
        )
        assert training_fingerprint(again) == training_fingerprint(first)

    def test_misaligned_resume_rejected(self, tmp_path):
        env, mechanism = _setup()
        train_parallel(
            env,
            mechanism,
            2,
            seed=4,
            workers=1,
            sync_every=2,
            checkpoint_every=2,
            checkpoint_dir=str(tmp_path),
        )
        env, mechanism = _setup()
        with pytest.raises(ValueError, match="round boundary"):
            train_parallel(
                env,
                mechanism,
                6,
                seed=4,
                workers=1,
                sync_every=3,
                checkpoint_every=3,
                checkpoint_dir=str(tmp_path),
            )


class TestJournal:
    def test_header_and_round_records(self, tmp_path):
        from repro.parallel.training import (
            KIND_TRAIN_HEADER,
            KIND_TRAIN_ROUND,
        )
        from repro.resilience.journal import RunJournal, read_journal

        env, mechanism = _setup()
        path = tmp_path / "train.jsonl"
        with RunJournal(path) as journal:
            train_parallel(
                env, mechanism, 6, seed=8, workers=1, sync_every=2,
                journal=journal,
            )
        records = read_journal(path).records
        kinds = [r.kind for r in records]
        assert kinds.count(KIND_TRAIN_HEADER) == 1
        assert kinds.count(KIND_TRAIN_ROUND) == 3
        assert records[0].data["episodes"] == 6


@pytest.mark.train
class TestWorkerInvariance:
    def test_fingerprint_identical_across_worker_counts(self):
        # The tentpole claim, executed: real spawned workers, same curve.
        assert _fingerprint(workers=2, sync_every=2) == _fingerprint(
            workers=1, sync_every=2
        )
