"""Sweep engine: grid construction, determinism contract, obs merging."""

from __future__ import annotations

import pytest

from repro.parallel import (
    PoolConfig,
    episodes_from_dicts,
    grid_items,
    run_sweep,
    sweep_item,
)

pytestmark = pytest.mark.parallel

TINY_BUILD = {
    "task_name": "mnist",
    "n_nodes": 4,
    "accuracy_mode": "surrogate",
    "max_rounds": 20,
}


def _tiny_grid(collect_obs: bool = False):
    return grid_items(
        mechanisms=["greedy", "random"],
        budgets=[40.0],
        n_seeds=1,
        seed=0,
        train_episodes=1,
        eval_episodes=2,
        build_kwargs=TINY_BUILD,
        collect_obs=collect_obs,
    )


class TestGridItems:
    def test_shape_and_keys(self):
        items = grid_items(
            mechanisms=["greedy", "random"],
            budgets=[40.0, 80.0],
            n_seeds=3,
            seed=5,
            train_episodes=2,
            eval_episodes=1,
            build_kwargs=TINY_BUILD,
        )
        assert len(items) == 2 * 2 * 3
        first = items[0]
        assert first["kind"] == "sweep"
        assert first["key"] == {
            "mechanism": "greedy",
            "budget": 40.0,
            "seed_offset": 0,
        }
        # Stream names must match the historical sequential loops exactly.
        assert first["rng_stream"] == "greedy/40.0/0"
        assert first["rng_root"] == 5
        # Env seed is seed + seed_offset.
        assert items[2]["build"]["seed"] == 7

    def test_items_are_json_serializable(self):
        import json

        json.dumps(_tiny_grid())  # hermetic = plain data, no live objects


class TestRunSweepDeterminism:
    def test_worker_count_invariance(self):
        items = _tiny_grid()
        seq = run_sweep(items, workers=1)
        pooled = run_sweep(items, workers=2)
        assert seq.ok and pooled.ok
        assert seq.fingerprint() == pooled.fingerprint()
        # And the episode payloads round-trip to equal results.
        for a, b in zip(seq.items, pooled.items):
            assert episodes_from_dicts(a["eval_episodes"]) == episodes_from_dicts(
                b["eval_episodes"]
            )

    def test_rerun_reproduces_fingerprint(self):
        items = _tiny_grid()
        assert (
            run_sweep(items, workers=1).fingerprint()
            == run_sweep(items, workers=1).fingerprint()
        )

    def test_fingerprint_excludes_timing(self):
        items = _tiny_grid()
        result = run_sweep(items, workers=1)
        result.elapsed = 1234.5
        result.worker_health = {0: 0.1}
        other = run_sweep(items, workers=1)
        assert result.fingerprint() == other.fingerprint()


class TestRunSweepFailures:
    def test_quarantine_surfaces_and_raises(self):
        items = [{"kind": "fail", "message": "cell exploded"}]
        result = run_sweep(
            items,
            pool_config=PoolConfig(workers=1, max_retries=0, backoff_base=0.01),
        )
        assert not result.ok
        assert result.items == [None]
        with pytest.raises(RuntimeError, match="cell exploded"):
            result.raise_on_quarantine()

    def test_ok_sweep_passes_through_raise_on_quarantine(self):
        result = run_sweep([{"kind": "echo", "value": 1}], workers=1)
        assert result.raise_on_quarantine() is result


class TestObsCollection:
    def test_snapshots_collected_and_merged(self):
        result = run_sweep(_tiny_grid(collect_obs=True), workers=1)
        assert result.ok
        assert result.obs_snapshot is not None
        names = {m["name"] for m in result.obs_snapshot["metrics"]}
        assert "runner.episodes" in names
        (episodes,) = [
            m
            for m in result.obs_snapshot["metrics"]
            if m["name"] == "runner.episodes"
        ]
        # 2 items × (1 train + 2 eval) episodes, summed across items.
        assert episodes["value"] == 6.0

    def test_in_process_items_do_not_leak_obs_state(self):
        from repro import obs

        assert not obs.enabled()
        run_sweep(_tiny_grid(collect_obs=True), workers=1)
        assert not obs.enabled()

    def test_obs_off_means_no_snapshot(self):
        result = run_sweep(_tiny_grid(collect_obs=False), workers=1)
        assert result.obs_snapshot is None


class TestSweepItemHelper:
    def test_round_trips_key_fields(self):
        item = sweep_item(
            build={"task_name": "mnist"},
            mechanism="greedy",
            rng_root=3,
            rng_stream="greedy/40.0/0",
            train_episodes=2,
            eval_episodes=1,
            key={"cell": 1},
        )
        assert item["kind"] == "sweep"
        assert item["key"] == {"cell": 1}
        assert item["obs"] is False
