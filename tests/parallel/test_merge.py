"""Cross-process merges: registry snapshots and RunningMeanStd parts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.registry import MetricsRegistry
from repro.parallel.merge import (
    merge_profiles,
    merge_running_stats,
    merge_snapshots,
)
from repro.rl.running_stat import RunningMeanStd

pytestmark = pytest.mark.parallel


def _registry(counter=0, gauge=None, hist=()) -> MetricsRegistry:
    reg = MetricsRegistry()
    if counter:
        reg.counter("episodes").inc(counter)
    if gauge is not None:
        reg.gauge("accuracy").set(gauge)
    for value in hist:
        reg.histogram("round_time", buckets=(1.0, 10.0)).observe(value)
    return reg


class TestMergeSnapshots:
    def test_counters_sum(self):
        merged = merge_snapshots(
            [_registry(counter=3).snapshot(), _registry(counter=4).snapshot()]
        )
        (metric,) = [m for m in merged["metrics"] if m["name"] == "episodes"]
        assert metric["value"] == 7.0

    def test_gauges_take_last_in_item_order(self):
        merged = merge_snapshots(
            [_registry(gauge=0.5).snapshot(), _registry(gauge=0.9).snapshot()]
        )
        (metric,) = [m for m in merged["metrics"] if m["name"] == "accuracy"]
        assert metric["value"] == 0.9

    def test_histograms_sum_exactly(self):
        merged = merge_snapshots(
            [
                _registry(hist=(0.5, 5.0)).snapshot(),
                _registry(hist=(20.0,)).snapshot(),
            ]
        )
        (metric,) = [m for m in merged["metrics"] if m["name"] == "round_time"]
        assert metric["count"] == 3
        assert metric["sum"] == pytest.approx(25.5)
        assert metric["min"] == 0.5
        assert metric["max"] == 20.0
        # cumulative bucket counts: <=1 saw one sample, <=10 saw two
        assert [c for _b, c in metric["buckets"]] == [1, 2]

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("round_time", buckets=(2.0, 4.0)).observe(1.0)
        with pytest.raises(ValueError):
            merge_snapshots(
                [_registry(hist=(0.5,)).snapshot(), reg.snapshot()]
            )

    def test_ewma_count_weighted(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for _ in range(3):
            a.ewma("eff", alpha=0.5).update(1.0)
        b.ewma("eff", alpha=0.5).update(0.0)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        (metric,) = merged["metrics"]
        assert metric["count"] == 4
        assert 0.0 < metric["value"] < 1.0

    def test_none_snapshots_skipped(self):
        merged = merge_snapshots([None, _registry(counter=2).snapshot(), None])
        (metric,) = merged["metrics"]
        assert metric["value"] == 2.0

    def test_merged_snapshot_renders_through_exporters(self):
        from repro.obs.exporters import parse_prometheus, to_prometheus

        merged = merge_snapshots(
            [
                _registry(counter=1, gauge=0.3, hist=(2.0,)).snapshot(),
                _registry(counter=2).snapshot(),
            ]
        )
        samples = parse_prometheus(to_prometheus(merged))
        assert samples[("episodes", ())] == 3.0


class TestMergeProfiles:
    def test_sums_by_path(self):
        p1 = [
            {"path": "episode", "name": "episode", "depth": 0, "count": 2,
             "total": 1.0, "self": 0.4},
        ]
        p2 = [
            {"path": "episode", "name": "episode", "depth": 0, "count": 1,
             "total": 0.5, "self": 0.1},
            {"path": "episode > step", "name": "step", "depth": 1, "count": 9,
             "total": 0.3, "self": 0.3},
        ]
        merged = merge_profiles([p1, p2])
        by_path = {n["path"]: n for n in merged}
        assert by_path["episode"]["count"] == 3
        assert by_path["episode"]["total"] == pytest.approx(1.5)
        assert by_path["episode > step"]["count"] == 9


class TestMergeRunningStats:
    def test_matches_single_stream_welford(self):
        # The acceptance bound from the issue: exact within 1e-12 against
        # one stream that saw every batch.
        rng = np.random.default_rng(0)
        batches = [rng.normal(size=(n, 3)) * s for n, s in
                   [(17, 1.0), (5, 4.0), (40, 0.1), (1, 2.0), (23, 7.0)]]

        single = RunningMeanStd(shape=(3,), epsilon=0.0)
        for batch in batches:
            single.update(batch)

        parts = []
        for i, batch in enumerate(batches):
            part = RunningMeanStd(shape=(3,), epsilon=0.0)
            part.update(batch)
            parts.append(part)
        merged = RunningMeanStd.merge(parts)

        np.testing.assert_allclose(merged.mean, single.mean, atol=1e-12)
        np.testing.assert_allclose(merged.var, single.var, atol=1e-12)
        assert merged.count == pytest.approx(single.count, abs=1e-12)

    def test_uneven_split_of_one_stream(self):
        rng = np.random.default_rng(1)
        data = rng.normal(size=(100, 2))
        single = RunningMeanStd(shape=(2,), epsilon=0.0)
        single.update(data)
        parts = []
        for chunk in (data[:3], data[3:50], data[50:]):
            part = RunningMeanStd(shape=(2,), epsilon=0.0)
            part.update(chunk)
            parts.append(part)
        merged = merge_running_stats(parts)
        np.testing.assert_allclose(merged.mean, single.mean, atol=1e-12)
        np.testing.assert_allclose(merged.var, single.var, atol=1e-12)

    def test_validates_inputs(self):
        with pytest.raises(ValueError):
            RunningMeanStd.merge([])
        with pytest.raises(ValueError):
            RunningMeanStd.merge(
                [RunningMeanStd(shape=(2,)), RunningMeanStd(shape=(3,))]
            )

    def test_single_part_roundtrip(self):
        part = RunningMeanStd(shape=(2,), epsilon=0.0)
        part.update(np.ones((4, 2)))
        merged = RunningMeanStd.merge([part])
        np.testing.assert_allclose(merged.mean, part.mean)
        assert merged.count == part.count
