"""Worker pool: crash containment, retry/backoff, quarantine, respawn.

The misbehaving item kinds (``crash``/``fail``/``flaky``/``unpicklable``)
live in :mod:`repro.parallel.items` precisely so these tests exercise the
real dispatch path — the same ``execute`` entry point production sweeps
resolve.
"""

from __future__ import annotations

import pytest

from repro.parallel.pool import (
    ItemFailure,
    PoolConfig,
    resolve_callable,
    run_items,
)

pytestmark = pytest.mark.parallel

FAST = dict(max_retries=1, backoff_base=0.01, backoff_cap=0.05)


class TestResolveCallable:
    def test_resolves_module_attr(self):
        fn = resolve_callable("repro.parallel.items:execute")
        assert callable(fn)

    def test_rejects_malformed_paths(self):
        with pytest.raises(ValueError):
            resolve_callable("no-colon-here")
        with pytest.raises(TypeError):
            resolve_callable("repro.parallel.items:__doc__")


class TestInProcess:
    def test_results_in_submission_order(self):
        report = run_items(
            [{"kind": "echo", "value": i} for i in range(5)],
            config=PoolConfig(workers=1),
        )
        assert report.ok
        assert [r["value"] for r in report.results] == list(range(5))

    def test_failure_retried_then_quarantined(self):
        report = run_items(
            [{"kind": "fail", "message": "boom"}],
            config=PoolConfig(workers=1, max_retries=2, backoff_base=0.001),
        )
        assert not report.ok
        assert report.results == [None]
        failure = report.quarantined[0]
        assert isinstance(failure, ItemFailure)
        assert failure.attempts == 3  # initial try + 2 retries
        assert all("boom" in e for e in failure.errors)
        assert report.retries == 2

    def test_flaky_item_recovers_within_budget(self, tmp_path):
        marker = tmp_path / "flaky"
        report = run_items(
            [
                {
                    "kind": "flaky",
                    "path": str(marker),
                    "fail_times": 1,
                    "value": 7,
                }
            ],
            config=PoolConfig(workers=1, max_retries=1, backoff_base=0.001),
        )
        assert report.ok
        assert report.results[0]["value"] == 7
        assert report.retries == 1


class TestPooled:
    def test_fan_out_uses_distinct_processes(self):
        import os

        report = run_items(
            [{"kind": "echo", "value": i} for i in range(6)],
            config=PoolConfig(workers=3, **FAST),
        )
        assert report.ok
        assert [r["value"] for r in report.results] == list(range(6))
        pids = {r["pid"] for r in report.results}
        assert os.getpid() not in pids  # really ran out-of-process
        assert len(pids) >= 2

    def test_worker_crash_is_contained_and_attributed(self):
        items = [
            {"kind": "echo", "value": 0},
            {"kind": "crash", "exitcode": 5},
            {"kind": "echo", "value": 2},
        ]
        report = run_items(items, config=PoolConfig(workers=2, **FAST))
        # Healthy items survive the neighbour's crash.
        assert report.results[0]["value"] == 0
        assert report.results[2]["value"] == 2
        # The poisoned item is quarantined with crash evidence.
        assert [f.index for f in report.quarantined] == [1]
        assert any("died" in e for e in report.quarantined[0].errors)
        assert report.respawns >= 1

    def test_flaky_item_retries_across_workers(self, tmp_path):
        marker = tmp_path / "flaky"
        items = [
            {"kind": "flaky", "path": str(marker), "fail_times": 1, "value": 1}
        ]
        report = run_items(
            items, config=PoolConfig(workers=2, max_retries=2, backoff_base=0.01)
        )
        assert report.ok
        assert report.results[0]["value"] == 1

    def test_unpicklable_result_is_an_error_not_a_hang(self):
        report = run_items(
            [{"kind": "unpicklable"}],
            config=PoolConfig(workers=2, max_retries=0, backoff_base=0.01),
        )
        assert not report.ok
        assert any(
            "pickle" in e.lower() for e in report.quarantined[0].errors
        )

    def test_item_timeout_terminates_wedged_worker(self):
        items = [{"kind": "hang", "seconds": 60.0}]
        report = run_items(
            items,
            config=PoolConfig(
                workers=2, max_retries=0, backoff_base=0.01, item_timeout=0.5
            ),
        )
        assert not report.ok
        assert any("died" in e for e in report.quarantined[0].errors)

    def test_health_tracks_failures(self):
        report = run_items(
            [{"kind": "fail"}] * 2,
            config=PoolConfig(workers=2, max_retries=0, backoff_base=0.01),
        )
        assert not report.ok
        assert any(h < 1.0 for h in report.worker_health.values())


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            PoolConfig(workers=-1)
        with pytest.raises(ValueError):
            PoolConfig(max_retries=-1)
        with pytest.raises(ValueError):
            PoolConfig(item_timeout=0.0)
