"""Seed derivation: spawn-based, collision-resistant, growth-stable."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.seeds import episode_seeds, item_sequence, sweep_item_seeds
from repro.utils.rng import spawn_seeds

pytestmark = pytest.mark.parallel


class TestSpawnSeeds:
    def test_deterministic_and_distinct(self):
        a = spawn_seeds(42, 16)
        b = spawn_seeds(42, 16)
        assert a == b
        assert len(set(a)) == 16

    def test_prefix_stable_under_growth(self):
        # Item i's seed must not change when the grid grows — appended
        # cells extend a sweep without invalidating earlier results.
        short = spawn_seeds(7, 5)
        long = spawn_seeds(7, 50)
        assert long[:5] == short

    def test_accepts_seedsequence_and_none(self):
        seq = np.random.SeedSequence(9)
        assert spawn_seeds(seq, 3) == spawn_seeds(9, 3)
        assert len(spawn_seeds(None, 3)) == 3  # entropy-seeded, no crash

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)
        with pytest.raises(TypeError):
            spawn_seeds("nope", 2)

    def test_no_collisions_across_adjacent_user_seeds(self):
        # The legacy uint32 generate_state derivation had no cross-seed
        # independence guarantee; spawned children must not collide over
        # a realistic block of user seeds.
        seen = set()
        for user_seed in range(64):
            seen.update(spawn_seeds(user_seed, 8))
        assert len(seen) == 64 * 8

    def test_differs_from_legacy_uint32_derivation(self):
        # Regression marker for the evaluate_mechanism bugfix: the new
        # derivation is intentionally NOT the old uint32 word stream.
        legacy = [
            int(s)
            for s in np.random.SeedSequence(123).generate_state(
                5, dtype=np.uint32
            )
        ]
        assert spawn_seeds(123, 5) != legacy


class TestEngineSeedHelpers:
    def test_episode_seeds_pure_function_of_item_and_index(self):
        assert episode_seeds(11, 6) == episode_seeds(11, 6)
        assert episode_seeds(11, 3) == episode_seeds(11, 6)[:3]
        assert episode_seeds(11, 4) != episode_seeds(12, 4)

    def test_sweep_item_seeds_prefix_property(self):
        assert sweep_item_seeds(0, 4) == sweep_item_seeds(0, 9)[:4]

    def test_item_sequence_reproduces_generator_stream(self):
        g1 = np.random.default_rng(item_sequence(5))
        g2 = np.random.default_rng(item_sequence(5))
        assert np.array_equal(g1.integers(0, 1000, 10), g2.integers(0, 1000, 10))
