"""Rollout-trajectory merge: a seed-ordered K-way split == one stream.

The parallel training engine's merge step is only sound if concatenating
K workers' partial rollout buffers in seed order reproduces, element for
element, the buffer a single sequential run would have filled.  These
property tests split a synthetic single-stream flat state at arbitrary
cut points (including empty chunks — a worker whose episodes all landed
elsewhere — and truncated episodes whose final transition is not
terminal) and require :func:`repro.parallel.merge.merge_trajectories`
to restore the original bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.merge import merge_trajectories

pytestmark = pytest.mark.parallel

_OBS_DIM = 3
_ACT_DIM = 2


def _single_stream(n: int, seed: int) -> dict:
    """A synthetic flat rollout state of ``n`` transitions."""
    rng = np.random.default_rng(seed)
    return {
        "obs": rng.normal(size=(n, _OBS_DIM)),
        "actions": rng.normal(size=(n, _ACT_DIM)),
        "rewards": rng.normal(size=(n,)),
        "values": rng.normal(size=(n,)),
        "log_probs": rng.normal(size=(n,)),
        "dones": (rng.random(size=(n,)) < 0.3).astype(np.uint8),
    }


def _split(state: dict, bounds: list) -> list:
    """Cut the stream at ``bounds`` (sorted, may repeat → empty chunks)."""
    n = state["rewards"].shape[0]
    edges = [0] + list(bounds) + [n]
    return [
        {key: value[lo:hi] for key, value in state.items()}
        for lo, hi in zip(edges, edges[1:])
    ]


@st.composite
def _stream_and_cuts(draw):
    n = draw(st.integers(min_value=0, max_value=48))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    k = draw(st.integers(min_value=0, max_value=6))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=n),
                min_size=k,
                max_size=k,
            )
        )
    )
    return n, seed, cuts


class TestSplitMergeIdentity:
    @settings(max_examples=60, deadline=None)
    @given(_stream_and_cuts())
    def test_any_split_merges_back_elementwise(self, case):
        n, seed, cuts = case
        single = _single_stream(n, seed)
        merged = merge_trajectories(_split(single, cuts))
        assert set(merged) == set(single)
        if n == 0:
            # All-empty input collapses to the canonical empty state
            # (shape-(0, 0) columns) by contract.
            assert merged["rewards"].shape == (0,)
            return
        for key in single:
            np.testing.assert_array_equal(merged[key], single[key])

    def test_empty_worker_chunks_are_transparent(self):
        single = _single_stream(7, seed=3)
        # Chunk layout: [0:0], [0:4], [4:4], [4:7], [7:7] — two workers
        # contributed nothing at all.
        merged = merge_trajectories(_split(single, [0, 4, 4, 7]))
        for key in single:
            np.testing.assert_array_equal(merged[key], single[key])

    def test_truncated_episode_tail_preserved(self):
        # The last chunk ends mid-episode (no terminal flag): the merge
        # must keep the truncated tail in place, not drop or reorder it.
        single = _single_stream(10, seed=5)
        single["dones"][:] = 0
        single["dones"][4] = 1  # one completed episode, then a truncation
        merged = merge_trajectories(_split(single, [5]))
        np.testing.assert_array_equal(merged["dones"], single["dones"])
        np.testing.assert_array_equal(merged["obs"], single["obs"])

    def test_order_matters(self):
        # Sanity: the merge is order-sensitive (seed order is the
        # contract); swapping parts must not reproduce the stream.
        single = _single_stream(8, seed=9)
        parts = _split(single, [4])
        swapped = merge_trajectories(parts[::-1])
        assert not np.array_equal(swapped["rewards"], single["rewards"])


class TestEdges:
    def test_all_empty_parts_yield_canonical_empty(self):
        single = _single_stream(0, seed=1)
        merged = merge_trajectories([single, dict(single)])
        assert merged["rewards"].shape == (0,)
        assert merged["obs"].shape[0] == 0
        assert merged["dones"].dtype == np.uint8

    def test_key_mismatch_rejected(self):
        good = _single_stream(3, seed=2)
        bad = {k: v for k, v in _single_stream(3, seed=2).items() if k != "values"}
        with pytest.raises(ValueError):
            merge_trajectories([good, bad])

    def test_no_parts_yield_canonical_empty(self):
        merged = merge_trajectories([])
        assert merged["rewards"].shape == (0,)
        assert merged["dones"].dtype == np.uint8
