"""The supported surfaces emit zero DeprecationWarnings.

``EdgeLearningEnv.profiles`` and ``FederatedSession.nodes`` are
deprecated raw-node surfaces (see the migration table in docs/api.md);
everything in ``src/`` and ``examples/`` was migrated to the population
column API.  These tests pin that: building environments, running
episodes through every zoo mechanism, lowering a tournament grid, and
the baselines' planner paths must all stay warning-free — a regression
here means new code reached for a deprecated surface.
"""

from __future__ import annotations

import warnings

import pytest

from repro.core.builder import BuildConfig
from repro.core.mechanism import Observation
from repro.experiments.mechanisms import available_mechanisms, make_mechanism


def _run_episode(env, mechanism, max_rounds=6):
    state, _ = env.reset(seed=5)
    obs = Observation(state, env.ledger.remaining, env.round_index)
    mechanism.begin_episode(obs)
    for _ in range(max_rounds):
        if env.done:
            break
        prices = mechanism.propose_prices(obs)
        _, _, _, _, info = env.step(prices)
        result = info["step_result"]
        mechanism.observe(prices, result)
        obs = Observation(
            result.state, result.remaining_budget, result.round_index
        )
    mechanism.end_episode()


@pytest.mark.parametrize("name", sorted(available_mechanisms()))
def test_mechanism_episode_warning_free(name):
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        env = BuildConfig(
            n_nodes=4, budget=12.0, seed=9, max_rounds=10
        ).build().env
        mechanism = make_mechanism(name, env, rng=3, tier="quick")
        _run_episode(env, mechanism)


def test_tournament_grid_lowering_warning_free():
    from repro.tournament import smoke_grid

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        items = smoke_grid().items()
        assert items


def test_deprecated_surfaces_still_warn():
    """The shims themselves must keep warning (the test above is only
    meaningful while the deprecated paths are detectable)."""
    from repro.population.api import _RAW_ACCESS_WARNED

    env = BuildConfig(n_nodes=4, budget=12.0, seed=9).build().env
    _RAW_ACCESS_WARNED.discard("EdgeLearningEnv.profiles")
    with pytest.warns(DeprecationWarning, match="EdgeLearningEnv.profiles"):
        _ = env.profiles
    _RAW_ACCESS_WARNED.discard("EdgeLearningEnv.profiles")
