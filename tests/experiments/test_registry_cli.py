"""Registry integrity and the CLI plumbing."""

import json

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.mechanisms import (
    MECHANISM_NAMES,
    make_mechanism,
    paper_ppo_config,
    quick_ppo_config,
)
from repro.experiments.registry import EXPERIMENTS, get_experiment


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        # One entry per figure/table in the paper's evaluation section,
        # plus clearly labelled extensions.
        paper_ids = {"fig3", "fig4", "fig5", "fig6", "fig7a", "fig7b", "table1"}
        assert paper_ids <= set(EXPERIMENTS)
        for extra in set(EXPERIMENTS) - paper_ids:
            assert "[extension]" in EXPERIMENTS[extra].description

    def test_get_experiment(self):
        spec = get_experiment("fig3")
        assert spec.exp_id == "fig3"
        assert callable(spec.runner)

    def test_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("fig99")

    def test_descriptions_non_empty(self):
        for spec in EXPERIMENTS.values():
            assert spec.description

    def test_runner_rejects_unknown_scale(self):
        with pytest.raises(ValueError):
            get_experiment("fig3").runner("huge", 0)


class TestMechanismFactory:
    def test_all_names_buildable(self, surrogate_env):
        for name in MECHANISM_NAMES:
            mech = make_mechanism(name, surrogate_env.env, rng=0)
            assert mech.name == name

    def test_unknown_name(self, surrogate_env):
        with pytest.raises(ValueError, match="unknown mechanism"):
            make_mechanism("oracle_v2", surrogate_env.env)

    def test_paper_tier_hyperparameters(self):
        cfg = paper_ppo_config()
        # §VI-A: lr 3e-5, decay 0.95 every 20 episodes, γ = 0.95.
        assert cfg.actor_lr == pytest.approx(3e-5)
        assert cfg.critic_lr == pytest.approx(3e-5)
        assert cfg.lr_decay == 0.95
        assert cfg.lr_decay_every == 20
        assert cfg.gamma == 0.95

    def test_quick_tier_batches(self):
        cfg = quick_ppo_config()
        assert cfg.min_update_batch and cfg.min_update_batch >= 32

    def test_unknown_tier(self, surrogate_env):
        with pytest.raises(ValueError, match="unknown tier"):
            make_mechanism("chiron", surrogate_env.env, tier="ludicrous")


class TestCLI:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_parser_run_defaults(self):
        args = build_parser().parse_args(["run", "fig3"])
        assert args.scale == "quick"
        assert args.seed == 0

    def test_run_writes_json(self, tmp_path, capsys, monkeypatch):
        # Patch in a featherweight experiment so the CLI test is instant.
        from repro.experiments import registry

        def tiny_runner(scale, seed, workers=1, journal=None):
            return {"scale": scale, "seed": seed}, "rendered-output"

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "fig3",
            registry.ExperimentSpec("fig3", "tiny", tiny_runner),
        )
        code = main(["run", "fig3", "--seed", "3", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "rendered-output" in out
        payload = json.loads((tmp_path / "fig3_quick_seed3.json").read_text())
        assert payload == {"scale": "quick", "seed": 3}

    def test_run_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            main(["run", "fig99"])

    def test_journal_flag_reaches_runner(self, tmp_path, monkeypatch):
        from repro.experiments import registry

        seen = {}

        def tiny_runner(scale, seed, workers=1, journal=None):
            seen["journal"] = journal
            return {}, "ok"

        monkeypatch.setitem(
            registry.EXPERIMENTS,
            "fig3",
            registry.ExperimentSpec("fig3", "tiny", tiny_runner),
        )
        journal = str(tmp_path / "sweep.jsonl")
        assert main(["run", "fig3", "--journal", journal]) == 0
        assert seen["journal"] == journal

    def test_journal_flag_suffixed_per_experiment_for_all(
        self, tmp_path, monkeypatch
    ):
        from repro.experiments import registry

        seen = {}

        def runner_for(exp_id):
            def runner(scale, seed, workers=1, journal=None):
                seen[exp_id] = journal
                return {}, "ok"

            return runner

        tiny = {
            exp_id: registry.ExperimentSpec(exp_id, "tiny", runner_for(exp_id))
            for exp_id in ("fig3", "table1")
        }
        monkeypatch.setattr(registry, "EXPERIMENTS", tiny)
        monkeypatch.setattr("repro.experiments.cli.EXPERIMENTS", tiny)
        journal = str(tmp_path / "sweep.jsonl")
        assert main(["run", "all", "--journal", journal]) == 0
        assert seen == {
            "fig3": f"{journal}.fig3",
            "table1": f"{journal}.table1",
        }
