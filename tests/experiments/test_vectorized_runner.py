"""run_episodes_vectorized: the batched rollout engine.

The anchor property: training through the vector path with ``num_envs=1``
is bit-identical to the sequential ``train_mechanism`` loop — same episode
results, same diagnostics, same final policy parameters.
"""

import numpy as np
import pytest

from repro.core import VectorizedEdgeLearningEnv, build_environment
from repro.experiments.mechanisms import make_mechanism
from repro.experiments.runner import (
    run_episodes_vectorized,
    train_mechanism,
)


def make_env(**kwargs):
    defaults = dict(
        task_name="mnist",
        n_nodes=4,
        budget=15.0,
        accuracy_mode="surrogate",
        seed=0,
        max_rounds=60,
    )
    defaults.update(kwargs)
    return build_environment(**defaults).env


def chiron_parameters(agent):
    params = []
    for ppo in (agent.exterior, agent.inner):
        params.extend(p.data.copy() for p in ppo.policy.parameters())
        params.extend(p.data.copy() for p in ppo.value_net.parameters())
    return params


class TestSingleReplicaBitIdentity:
    def test_matches_sequential_training(self):
        episodes = 4
        env_seq = make_env()
        agent_seq = make_mechanism("chiron", env_seq, rng=1, tier="quick")
        hist_seq = train_mechanism(env_seq, agent_seq, episodes=episodes)

        env_vec = make_env()
        agent_vec = make_mechanism("chiron", env_vec, rng=1, tier="quick")
        venv = VectorizedEdgeLearningEnv.from_env(env_vec, 1)
        hist_vec = train_mechanism(venv, agent_vec, episodes=episodes)

        assert len(hist_seq.episodes) == len(hist_vec.episodes) == episodes
        for a, b in zip(hist_seq.episodes, hist_vec.episodes):
            assert a.rounds == b.rounds
            assert a.final_accuracy == b.final_accuracy
            assert a.reward_exterior == b.reward_exterior
            assert a.reward_inner == b.reward_inner
            assert a.budget_spent == b.budget_spent
        for p, q in zip(
            chiron_parameters(agent_seq), chiron_parameters(agent_vec)
        ):
            np.testing.assert_array_equal(p, q)


class TestMultiReplica:
    def test_three_replicas_complete_all_episodes(self):
        env = make_env()
        agent = make_mechanism("chiron", env, rng=1, tier="quick")
        history = train_mechanism(env, agent, episodes=5, num_envs=3)
        assert len(history.episodes) == 5
        for ep in history.episodes:
            assert ep.rounds > 0
            assert np.isfinite(ep.reward_exterior)
            assert 0.0 <= ep.final_accuracy <= 1.0

    def test_prebuilt_vector_env_accepted(self):
        env = make_env()
        agent = make_mechanism("chiron", env, rng=1, tier="quick")
        venv = VectorizedEdgeLearningEnv.from_env(env, 2)
        results = run_episodes_vectorized(venv, agent, episodes=3)
        assert len(results) == 3
        for result, diagnostics in results:
            assert result.rounds > 0
            assert "episode_reward_exterior" in diagnostics


class TestProtocolGating:
    def test_non_vectorized_mechanism_rejected(self):
        env = make_env()
        greedy = make_mechanism("greedy", env, rng=0)
        assert not getattr(greedy, "supports_vectorized", False)
        with pytest.raises(TypeError, match="vectorized"):
            run_episodes_vectorized(env, greedy, episodes=1)

    def test_chiron_advertises_support(self):
        env = make_env()
        agent = make_mechanism("chiron", env, rng=0, tier="quick")
        assert agent.supports_vectorized
