"""Seeded evaluation: worker-count invariance + seed-derivation bugfix.

``evaluate_mechanism(seed=...)`` changed in two deliberate ways when it
gained ``workers``:

1. per-episode seeds moved from ``SeedSequence(seed).generate_state(n,
   dtype=np.uint32)`` words (collision-prone, no independence guarantee)
   to ``SeedSequence.spawn`` children via
   :func:`repro.utils.rng.spawn_seeds`;
2. each episode now runs on its own snapshot of ``(env, mechanism)``
   instead of sharing mutable state, making episode ``i`` a pure function
   of ``(seed, i)``.

These tests pin the new contract and document the divergence from the
old derivation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_environment
from repro.experiments.mechanisms import make_mechanism
from repro.experiments.runner import (
    evaluate_mechanism,
    run_episode,
    train_mechanism,
)
from repro.utils.rng import spawn_seeds

pytestmark = pytest.mark.parallel


def _env_and_mechanism(name="greedy", seed=0):
    build = build_environment(
        task_name="mnist", n_nodes=4, budget=40.0, seed=seed, max_rounds=25
    )
    mechanism = make_mechanism(
        name, build.env, rng=np.random.default_rng(seed + 1)
    )
    return build.env, mechanism


class TestWorkersInvariance:
    def test_results_identical_for_any_worker_count(self):
        env, mechanism = _env_and_mechanism()
        sequential = evaluate_mechanism(
            env, mechanism, episodes=4, seed=123, workers=1
        )
        pooled = evaluate_mechanism(
            env, mechanism, episodes=4, seed=123, workers=3
        )
        assert sequential == pooled  # EpisodeResult is a frozen dataclass

    def test_caller_state_untouched_by_seeded_eval(self):
        # Seeded evaluation snapshots (env, mechanism); afterwards the
        # caller's env must behave exactly as if no evaluation happened.
        env_a, mech_a = _env_and_mechanism()
        env_b, mech_b = _env_and_mechanism()
        evaluate_mechanism(env_a, mech_a, episodes=2, seed=9)
        result_a, _ = run_episode(env_a, mech_a, seed=77)
        result_b, _ = run_episode(env_b, mech_b, seed=77)
        assert result_a == result_b

    def test_episode_i_independent_of_episode_count(self):
        # Pure function of (seed, i): asking for more episodes must not
        # change the earlier ones (spawn children are index-stable).
        env, mechanism = _env_and_mechanism()
        short = evaluate_mechanism(env, mechanism, episodes=2, seed=5)
        long = evaluate_mechanism(env, mechanism, episodes=5, seed=5)
        assert long[:2] == short

    def test_reproducible_and_distinct(self):
        env, mechanism = _env_and_mechanism(name="random")
        a = evaluate_mechanism(env, mechanism, episodes=3, seed=11)
        b = evaluate_mechanism(env, mechanism, episodes=3, seed=11)
        assert a == b
        assert len({e.final_accuracy for e in a}) > 1


class TestSeedDerivationRegression:
    def test_new_derivation_is_spawn_based_not_uint32_words(self):
        # Documents the bugfix: the old uint32 words are NOT what episodes
        # receive anymore.  If this test ever fails because the two lists
        # match, the collision-prone derivation has been reintroduced.
        legacy = [
            int(s)
            for s in np.random.SeedSequence(42).generate_state(
                5, dtype=np.uint32
            )
        ]
        assert spawn_seeds(42, 5) != legacy

    def test_evaluate_uses_spawn_seeds(self):
        # An episode run manually with the spawn-derived seed must equal
        # the corresponding evaluate_mechanism episode.
        env, mechanism = _env_and_mechanism()
        results = evaluate_mechanism(env, mechanism, episodes=3, seed=21)
        env2, mechanism2 = _env_and_mechanism()
        if hasattr(mechanism2, "eval_mode"):
            mechanism2.eval_mode()
        seeds = spawn_seeds(21, 3)
        manual, _ = run_episode(env2, mechanism2, seed=seeds[1])
        assert results[1] == manual


class TestGuards:
    def test_unseeded_parallel_eval_rejected(self):
        env, mechanism = _env_and_mechanism()
        with pytest.raises(ValueError, match="seed"):
            evaluate_mechanism(env, mechanism, episodes=2, workers=2)

    def test_unseeded_sequential_path_preserved(self):
        # seed=None keeps the legacy shared-state behaviour (episodes
        # continue the env's own stream) — checkpoint tests rely on it.
        env, mechanism = _env_and_mechanism(name="random")
        results = evaluate_mechanism(env, mechanism, episodes=2)
        assert len(results) == 2

    def test_unseeded_parallel_train_rejected(self):
        # workers > 1 now routes into repro.parallel.train_parallel,
        # which needs explicit per-episode seeds to stay deterministic.
        env, mechanism = _env_and_mechanism(name="chiron")
        with pytest.raises(ValueError, match="seed"):
            train_mechanism(env, mechanism, episodes=1, workers=2)

    def test_collect_incapable_mechanism_points_to_run_sweep(self):
        # Mechanisms without the begin_collect/take_collected protocol
        # can't fan trajectory collection; the error routes callers to
        # the across-runs parallelism that does apply.
        env, mechanism = _env_and_mechanism(name="greedy")
        with pytest.raises(TypeError, match="run_sweep"):
            train_mechanism(env, mechanism, episodes=1, workers=2, seed=0)

    def test_seeded_train_matches_train_parallel(self):
        # train_mechanism(seed=...) is a thin wrapper over the parallel
        # engine: same args, same curve.
        from repro.parallel.training import (
            train_parallel,
            training_fingerprint,
        )

        env, mechanism = _env_and_mechanism(name="chiron")
        wrapped = train_mechanism(env, mechanism, episodes=4, seed=17)
        env, mechanism = _env_and_mechanism(name="chiron")
        direct = train_parallel(env, mechanism, 4, seed=17, workers=1)
        assert training_fingerprint(wrapped) == training_fingerprint(direct)

    def test_invalid_workers_rejected(self):
        env, mechanism = _env_and_mechanism()
        with pytest.raises(ValueError):
            evaluate_mechanism(env, mechanism, episodes=1, seed=0, workers=0)
