"""Direct rendering test for budget-sweep figures."""

import numpy as np

from repro.experiments.budget_sweep import BudgetSweepResult
from repro.experiments.figures import render_budget_sweep
from repro.experiments.results import EvaluationSummary


def summary(acc, rounds, eff):
    return EvaluationSummary(
        mechanism="m",
        n_episodes=3,
        accuracy_mean=acc,
        accuracy_std=0.01,
        rounds_mean=rounds,
        rounds_std=1.0,
        efficiency_mean=eff,
        efficiency_std=0.01,
        time_mean=300.0,
        utility_mean=1600.0,
    )


def test_render_budget_sweep_panels():
    result = BudgetSweepResult(task="mnist", n_nodes=5, budgets=[20.0, 40.0])
    result.summaries["chiron"] = [summary(0.95, 14, 0.92), summary(0.96, 20, 0.93)]
    result.summaries["greedy"] = [summary(0.80, 2, 0.63), summary(0.88, 3, 0.60)]
    text = render_budget_sweep(result)
    assert "(a) final global model accuracy" in text
    assert "(b) training rounds completed" in text
    assert "(c) time efficiency" in text
    assert "0.950" in text and "14" in text and "0.920" in text
    # Three panels, each with header + rule + 2 data rows.
    assert text.count("chiron") == 3


def test_series_accessor():
    result = BudgetSweepResult(task="mnist", n_nodes=5, budgets=[20.0])
    result.summaries["chiron"] = [summary(0.9, 10, 0.9)]
    np.testing.assert_allclose(result.series("chiron", "accuracy"), [0.9])
    np.testing.assert_allclose(result.series("chiron", "rounds"), [10.0])
    np.testing.assert_allclose(result.series("chiron", "efficiency"), [0.9])
