"""Markdown report generation from saved payloads."""

import json

import pytest

from repro.experiments.report import build_report


def write_payload(directory, exp_id, payload):
    path = directory / f"{exp_id}_quick_seed0.json"
    path.write_text(json.dumps(payload))
    return path


@pytest.fixture
def results_dir(tmp_path):
    write_payload(
        tmp_path,
        "fig3",
        {
            "mechanism": "chiron",
            "task": "mnist",
            "n_nodes": 5,
            "budget": 60.0,
            "metric": "system",
            "rewards": list(range(20)),
            "smoothed": [float(i) for i in range(20)],
            "improved": 10.0,
        },
    )
    write_payload(
        tmp_path,
        "fig4",
        {
            "task": "mnist",
            "n_nodes": 5,
            "budgets": [20.0, 40.0],
            "mechanisms": {
                "chiron": [
                    {"accuracy": 0.95, "rounds": 10, "efficiency": 0.9,
                     "accuracy_std": 0.0, "total_time": 100, "utility": 1000},
                    {"accuracy": 0.96, "rounds": 20, "efficiency": 0.92,
                     "accuracy_std": 0.0, "total_time": 200, "utility": 1100},
                ],
                "greedy": [
                    {"accuracy": 0.80, "rounds": 2, "efficiency": 0.6,
                     "accuracy_std": 0.0, "total_time": 50, "utility": 900},
                    {"accuracy": 0.85, "rounds": 3, "efficiency": 0.65,
                     "accuracy_std": 0.0, "total_time": 60, "utility": 950},
                ],
            },
        },
    )
    write_payload(
        tmp_path,
        "table1",
        {
            "n_nodes": 100,
            "rows": [
                {"budget": 140.0, "accuracy": 0.92, "rounds": 5.0,
                 "efficiency": 0.75, "paper": {"accuracy": 0.916, "rounds": 16,
                                               "efficiency": 0.713}},
            ],
        },
    )
    return tmp_path


class TestBuildReport:
    def test_contains_all_sections(self, results_dir):
        report = build_report(results_dir)
        assert "fig3 — chiron convergence" in report
        assert "fig4 — mnist budget sweep" in report
        assert "table1 — Chiron at 100 nodes" in report

    def test_missing_experiments_flagged(self, results_dir):
        report = build_report(results_dir)
        assert "fig5 — not run" in report

    def test_numbers_present(self, results_dir):
        report = build_report(results_dir)
        assert "0.950" in report  # chiron accuracy at η=20
        assert "0.916" in report  # paper reference in table1
        assert "+10.0" in report  # fig3 improvement

    def test_markdown_tables_wellformed(self, results_dir):
        report = build_report(results_dir)
        table_lines = [l for l in report.splitlines() if l.startswith("|")]
        # Every table row has a consistent cell count within its table.
        assert table_lines
        for line in table_lines:
            assert line.endswith("|")

    def test_empty_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path)

    def test_missing_dir(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            build_report(tmp_path / "nope")

    def test_cli_report(self, results_dir, capsys):
        from repro.experiments.cli import main

        assert main(["report", str(results_dir)]) == 0
        assert "fig3" in capsys.readouterr().out
