"""Direct tests of the experiment runner functions at miniature scale."""

import numpy as np
import pytest

from repro.experiments.budget_sweep import DEFAULT_BUDGETS, run_budget_sweep
from repro.experiments.convergence import run_convergence
from repro.experiments.table1 import PAPER_TABLE1, run_table1


class TestRunConvergence:
    def test_basic_series(self):
        result = run_convergence(
            mechanism_name="chiron", n_nodes=3, budget=10.0, episodes=4,
            seed=0, max_rounds=60,
        )
        assert result.rewards.shape == (4,)
        assert result.smoothed.shape == (4,)
        assert result.metric == "exterior"
        payload = result.to_payload()
        assert payload["n_nodes"] == 3 and len(payload["rewards"]) == 4

    def test_system_metric_includes_inner(self):
        ext = run_convergence(
            mechanism_name="chiron", n_nodes=3, budget=10.0, episodes=3,
            seed=0, max_rounds=60, metric="exterior",
        )
        sys_ = run_convergence(
            mechanism_name="chiron", n_nodes=3, budget=10.0, episodes=3,
            seed=0, max_rounds=60, metric="system",
        )
        # Inner rewards are <= 0, so the system series sits at or below.
        assert np.all(sys_.rewards <= ext.rewards + 1e-9)

    def test_invalid_metric(self):
        with pytest.raises(ValueError, match="metric"):
            run_convergence(metric="both", episodes=1)

    def test_baseline_mechanism(self):
        result = run_convergence(
            mechanism_name="greedy", n_nodes=3, budget=10.0, episodes=3,
            seed=0, max_rounds=60,
        )
        assert result.mechanism == "greedy"


class TestRunBudgetSweep:
    def test_tiny_sweep(self):
        result = run_budget_sweep(
            task="mnist",
            budgets=(8.0, 16.0),
            mechanisms=("greedy", "fixed_price"),
            n_nodes=3,
            train_episodes=2,
            eval_episodes=2,
            seed=0,
            max_rounds=60,
        )
        assert result.budgets == [8.0, 16.0]
        assert set(result.summaries) == {"greedy", "fixed_price"}
        assert result.series("greedy", "accuracy").shape == (2,)
        payload = result.to_payload()
        assert payload["mechanisms"]["fixed_price"][0]["rounds"] >= 1

    def test_default_budget_grids(self):
        assert set(DEFAULT_BUDGETS) == {"mnist", "fashion_mnist", "cifar10"}
        # CIFAR grid sits above the MNIST grid (§VI-B).
        assert min(DEFAULT_BUDGETS["cifar10"]) > min(DEFAULT_BUDGETS["mnist"])

    def test_unknown_metric_key(self):
        result = run_budget_sweep(
            task="mnist", budgets=(8.0,), mechanisms=("fixed_price",),
            n_nodes=3, train_episodes=1, eval_episodes=1, seed=0, max_rounds=60,
        )
        with pytest.raises(KeyError):
            result.series("fixed_price", "latency")


class TestRunTable1:
    def test_tiny_table(self):
        result = run_table1(
            budgets=(30.0, 60.0),
            n_nodes=5,
            train_episodes=2,
            eval_episodes=2,
            seed=0,
            max_rounds=60,
        )
        assert len(result.rows) == 2
        payload = result.to_payload()
        assert payload["rows"][0]["budget"] == 30.0
        # Custom budgets have no paper reference.
        assert payload["rows"][0]["paper"] is None

    def test_seed_averaging_pools_episodes(self):
        result = run_table1(
            budgets=(30.0,), n_nodes=4, train_episodes=1, eval_episodes=2,
            seed=0, max_rounds=60, n_seeds=2,
        )
        assert result.rows[0].n_episodes == 4  # 2 seeds × 2 eval episodes

    def test_paper_reference_rows(self):
        assert PAPER_TABLE1[140.0]["rounds"] == 16
        assert PAPER_TABLE1[380.0]["accuracy"] == 0.943
