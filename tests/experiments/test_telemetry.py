"""Per-round telemetry recording."""

import csv
import json

import numpy as np
import pytest

from repro.baselines import FixedPriceMechanism
from repro.experiments.telemetry import EpisodeRecorder, record_episode


@pytest.fixture
def trace(surrogate_env):
    env = surrogate_env.env
    return record_episode(env, FixedPriceMechanism(env, markup=2.0))


class TestRecordEpisode:
    def test_captures_every_round(self, trace, surrogate_env):
        env = surrogate_env.env
        # Episode ends at budget exhaustion; last record may be a discarded
        # overdraw round.
        assert len(trace) >= env.ledger.rounds_charged
        kept = [r for r in trace.records if r["round_kept"]]
        assert len(kept) == env.ledger.rounds_charged

    def test_series_extraction(self, trace):
        accuracy = trace.series("accuracy")
        assert accuracy.shape == (len(trace),)
        assert accuracy[-1] >= accuracy[0] - 0.05

    def test_unknown_field(self, trace):
        with pytest.raises(KeyError, match="unknown telemetry field"):
            trace.series("loss")

    def test_budget_series_non_increasing(self, trace):
        remaining = trace.series("remaining_budget")
        assert np.all(np.diff(remaining) <= 1e-9)


class TestExport:
    def test_jsonl_roundtrip(self, trace, tmp_path):
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(trace)
        first = json.loads(lines[0])
        assert "accuracy" in first and "total_payment" in first

    def test_csv_roundtrip(self, trace, tmp_path):
        path = trace.to_csv(tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(trace)
        assert float(rows[0]["n_participants"]) >= 1

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EpisodeRecorder().to_csv(tmp_path / "x.csv")

    def test_clear(self, trace):
        trace.clear()
        assert len(trace) == 0
