"""Per-round telemetry recording."""

import csv
import json

import numpy as np
import pytest

from repro.baselines import FixedPriceMechanism
from repro.core.builder import build_environment
from repro.core.env import StepResult
from repro.experiments.telemetry import (
    EpisodeRecorder,
    flatten_step,
    record_episode,
    stream_episode,
)
from repro.faults.injector import FaultConfig


@pytest.fixture
def trace(surrogate_env):
    env = surrogate_env.env
    return record_episode(env, FixedPriceMechanism(env, markup=2.0))


@pytest.fixture
def faulted_trace():
    """A trace from an episode that actually exercises the fault pipeline."""
    env = build_environment(
        n_nodes=4,
        budget=15.0,
        seed=123,
        faults=FaultConfig.mixed(0.3, seed=7),
    ).env
    return record_episode(env, FixedPriceMechanism(env, markup=2.0))


class TestRecordEpisode:
    def test_captures_every_round(self, trace, surrogate_env):
        env = surrogate_env.env
        # Episode ends at budget exhaustion; last record may be a discarded
        # overdraw round.
        assert len(trace) >= env.ledger.rounds_charged
        kept = [r for r in trace.records if r["round_kept"]]
        assert len(kept) == env.ledger.rounds_charged

    def test_series_extraction(self, trace):
        accuracy = trace.series("accuracy")
        assert accuracy.shape == (len(trace),)
        assert accuracy[-1] >= accuracy[0] - 0.05

    def test_unknown_field(self, trace):
        with pytest.raises(KeyError, match="unknown telemetry field"):
            trace.series("loss")

    def test_budget_series_non_increasing(self, trace):
        remaining = trace.series("remaining_budget")
        assert np.all(np.diff(remaining) <= 1e-9)


class TestExport:
    def test_jsonl_roundtrip(self, trace, tmp_path):
        path = trace.to_jsonl(tmp_path / "trace.jsonl")
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(trace)
        first = json.loads(lines[0])
        assert "accuracy" in first and "total_payment" in first

    def test_csv_roundtrip(self, trace, tmp_path):
        path = trace.to_csv(tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(trace)
        assert float(rows[0]["n_participants"]) >= 1

    def test_csv_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            EpisodeRecorder().to_csv(tmp_path / "x.csv")

    def test_clear(self, trace):
        trace.clear()
        assert len(trace) == 0


_FAULT_FIELDS = (
    "n_delivered",
    "n_crashed",
    "n_late",
    "n_corrupted",
    "n_quarantined",
    "clawback",
    "min_reliability",
)


class TestFaultTelemetry:
    def test_fault_counters_round_trip_jsonl(self, faulted_trace, tmp_path):
        path = faulted_trace.to_jsonl(tmp_path / "trace.jsonl")
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(records) == len(faulted_trace)
        for field in _FAULT_FIELDS:
            assert all(field in r for r in records)
        # The mixed-fault episode must actually exercise the pipeline, and
        # the written stream must agree with the in-memory one.
        assert any(
            r["n_crashed"] or r["n_late"] or r["n_corrupted"] for r in records
        )
        for written, kept in zip(records, faulted_trace.records):
            for field in _FAULT_FIELDS:
                assert written[field] == pytest.approx(float(kept[field]))

    def test_fault_counters_round_trip_csv(self, faulted_trace, tmp_path):
        path = faulted_trace.to_csv(tmp_path / "trace.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(faulted_trace)
        for row, kept in zip(rows, faulted_trace.records):
            for field in _FAULT_FIELDS:
                assert float(row[field]) == pytest.approx(float(kept[field]))

    def test_min_reliability_and_clawback_consistent(self, faulted_trace):
        reliability = faulted_trace.series("min_reliability")
        assert np.all(reliability >= 0.0) and np.all(reliability <= 1.0)
        clawback = faulted_trace.series("clawback")
        assert np.all(clawback >= 0.0)
        summary = faulted_trace.fault_summary()
        assert summary["clawback_total"] == pytest.approx(clawback.sum())
        assert summary["crashes"] == faulted_trace.series("n_crashed").sum()

    def test_flatten_step_empty_participants(self):
        """A round nobody joined: zero counts, no div-by-zero, kept flags."""
        n = 3
        result = StepResult(
            state=np.zeros(4),
            reward_exterior=0.0,
            reward_inner=0.0,
            done=False,
            truncated=False,
            round_kept=False,
            accuracy=0.1,
            round_time=0.0,
            efficiency=0.0,
            participants=[],
            unavailable=[0, 2],
            payments=np.zeros(n),
            zetas=np.zeros(n),
            times=np.zeros(n),
            utilities=np.zeros(n),
            remaining_budget=5.0,
            round_index=0,
        )
        record = flatten_step(result)
        assert record["n_participants"] == 0
        assert record["n_unavailable"] == 2
        assert record["mean_zeta_ghz"] == 0.0
        assert record["total_payment"] == 0.0
        assert record["n_delivered"] == 0
        assert record["clawback"] == 0.0
        assert record["min_reliability"] == 1.0
        recorder = EpisodeRecorder()
        recorder.observe(result)
        assert recorder.fault_summary()["crashes"] == 0.0


class TestStreamEpisode:
    def test_streams_superset_of_flatten_step(self, tmp_path):
        from repro import obs
        from repro.obs.exporters import read_jsonl

        env = build_environment(n_nodes=3, budget=8.0, seed=5).env
        path = tmp_path / "rounds.jsonl"
        recorder = stream_episode(
            env, FixedPriceMechanism(env, markup=2.0), path
        )
        assert not obs.enabled()  # restored afterwards
        events = read_jsonl(path)
        assert len(events) == len(recorder)
        for event, record in zip(events, recorder.records):
            assert event["event"] == "env.round"
            assert {"episode", "terminated", "truncated"} <= set(event)
            for field, value in record.items():
                if isinstance(value, float):
                    assert event[field] == pytest.approx(value)
                else:
                    assert event[field] == value
