"""Headline-claims extraction."""

import pytest

from repro.experiments.budget_sweep import BudgetSweepResult
from repro.experiments.claims import headline_claims
from repro.experiments.results import EvaluationSummary


def summary(mech, acc, eff):
    return EvaluationSummary(
        mechanism=mech,
        n_episodes=3,
        accuracy_mean=acc,
        accuracy_std=0.0,
        rounds_mean=10.0,
        rounds_std=0.0,
        efficiency_mean=eff,
        efficiency_std=0.0,
        time_mean=100.0,
        utility_mean=1000.0,
    )


def sweep_with(chiron, drl, greedy, budgets=(20.0, 40.0)):
    result = BudgetSweepResult(task="mnist", n_nodes=5, budgets=list(budgets))
    result.summaries["chiron"] = [summary("chiron", a, e) for a, e in chiron]
    result.summaries["drl_single"] = [summary("drl_single", a, e) for a, e in drl]
    result.summaries["greedy"] = [summary("greedy", a, e) for a, e in greedy]
    return result


class TestHeadlineClaims:
    def test_max_gain_over_strongest_baseline(self):
        sweep = sweep_with(
            chiron=[(0.95, 0.95), (0.96, 0.99)],
            drl=[(0.90, 0.80), (0.95, 0.85)],
            greedy=[(0.88, 0.70), (0.90, 0.75)],
        )
        claims = headline_claims(sweep)
        # Budget 20: chiron-best baseline = 0.95-0.90=0.05; budget 40: 0.01.
        assert claims.accuracy_gain == pytest.approx(0.05)
        assert claims.accuracy_gain_budget == 20.0
        # Efficiency: 0.15 at budget 20, 0.14 at 40 → max 0.15.
        assert claims.efficiency_gain == pytest.approx(0.15)
        assert claims.mean_accuracy_gain == pytest.approx(0.03)

    def test_payload_includes_paper_reference(self):
        sweep = sweep_with(
            chiron=[(0.9, 0.9)], drl=[(0.8, 0.8)], greedy=[(0.7, 0.7)],
            budgets=(20.0,),
        )
        payload = headline_claims(sweep).to_payload()
        assert payload["paper"]["accuracy_gain"] == 0.065
        assert payload["paper"]["efficiency_gain"] == 0.39

    def test_missing_mechanism(self):
        sweep = sweep_with(
            chiron=[(0.9, 0.9)], drl=[(0.8, 0.8)], greedy=[(0.7, 0.7)],
            budgets=(20.0,),
        )
        del sweep.summaries["greedy"]
        with pytest.raises(KeyError, match="greedy"):
            headline_claims(sweep)
