"""Experiment runner and result records."""

import numpy as np
import pytest

from repro.baselines import FixedPriceMechanism, RandomMechanism
from repro.experiments.results import EpisodeResult, EvaluationSummary, TrainingHistory
from repro.experiments.runner import evaluate_mechanism, run_episode, train_mechanism


@pytest.fixture
def env(surrogate_env):
    return surrogate_env.env


def episode(reward=10.0, rounds=5, acc=0.9, eff=0.8, time=100.0):
    return EpisodeResult(
        rounds=rounds,
        final_accuracy=acc,
        mean_time_efficiency=eff,
        total_learning_time=time,
        budget_spent=19.0,
        reward_exterior=reward,
        reward_inner=-5.0,
    )


class TestRunEpisode:
    def test_accounting_matches_env(self, env):
        result, _diag = run_episode(env, FixedPriceMechanism(env, markup=2.0))
        assert result.rounds >= 1
        assert result.budget_spent <= env.config.budget + 1e-9
        assert result.budget_spent == pytest.approx(env.ledger.spent)
        assert result.final_accuracy == pytest.approx(env.accuracy)
        assert 0 < result.mean_time_efficiency <= 1

    def test_reward_sums(self, env):
        result, _ = run_episode(env, FixedPriceMechanism(env, markup=2.0))
        # The telescoped exterior reward ≈ λ(A_K − A_0) − Σ T̃.
        cfg = env.config.rewards
        expected = (
            cfg.accuracy_weight * (result.final_accuracy - env.learning.curve.a_init)
            - result.total_learning_time / cfg.resolved_time_scale()
        )
        assert result.reward_exterior == pytest.approx(expected, abs=25.0)

    def test_multiple_episodes_reset_properly(self, env):
        mech = FixedPriceMechanism(env, markup=2.0)
        r1, _ = run_episode(env, mech)
        r2, _ = run_episode(env, mech)
        assert abs(r1.rounds - r2.rounds) <= 1  # same static policy


class TestTrainEvaluate:
    def test_train_returns_history(self, env):
        history = train_mechanism(env, RandomMechanism(env, rng=0), episodes=4)
        assert len(history) == 4
        assert history.reward_curve.shape == (4,)

    def test_evaluate_returns_episodes(self, env):
        results = evaluate_mechanism(env, FixedPriceMechanism(env, markup=2.0), episodes=3)
        assert len(results) == 3

    def test_invalid_episode_count(self, env):
        with pytest.raises(ValueError):
            train_mechanism(env, RandomMechanism(env, rng=0), episodes=0)


class TestTrainingHistory:
    def test_curves(self):
        hist = TrainingHistory("m")
        for r in (1.0, 2.0, 3.0):
            hist.append(episode(reward=r), {})
        np.testing.assert_allclose(hist.reward_curve, [1, 2, 3])
        np.testing.assert_allclose(hist.rounds_curve, [5, 5, 5])

    def test_smoothed_length_preserved(self):
        hist = TrainingHistory("m")
        for r in range(20):
            hist.append(episode(reward=float(r)), {})
        smooth = hist.smoothed_rewards(5)
        assert smooth.shape == (20,)
        # Trailing average of an increasing series is increasing.
        assert np.all(np.diff(smooth) >= 0)

    def test_smoothed_empty(self):
        assert TrainingHistory("m").smoothed_rewards().size == 0

    def test_smoothed_window_larger_than_data(self):
        hist = TrainingHistory("m")
        hist.append(episode(reward=4.0), {})
        np.testing.assert_allclose(hist.smoothed_rewards(100), [4.0])


class TestEvaluationSummary:
    def test_statistics(self):
        episodes = [episode(acc=0.8), episode(acc=0.9)]
        summary = EvaluationSummary.from_episodes("m", episodes)
        assert summary.accuracy_mean == pytest.approx(0.85)
        assert summary.accuracy_std == pytest.approx(0.05)
        assert summary.n_episodes == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EvaluationSummary.from_episodes("m", [])

    def test_server_utility_alias(self):
        assert episode(reward=7.0).server_utility == 7.0


class TestSeededRunner:
    def test_run_episode_seed_reproduces_exactly(self, env):
        mech = FixedPriceMechanism(env, markup=2.0)
        a, _ = run_episode(env, mech, seed=41)
        b, _ = run_episode(env, mech, seed=41)
        assert a == b

    def test_run_episode_different_seeds_diverge(self, env):
        mech = FixedPriceMechanism(env, markup=2.0)
        a, _ = run_episode(env, mech, seed=41)
        b, _ = run_episode(env, mech, seed=42)
        assert a != b

    def test_evaluate_seed_reproduces_and_fans_out(self, env):
        mech = FixedPriceMechanism(env, markup=2.0)
        first = evaluate_mechanism(env, mech, episodes=3, seed=8)
        second = evaluate_mechanism(env, mech, episodes=3, seed=8)
        assert first == second
        # Derived per-episode seeds differ, so the episodes are distinct
        # draws rather than three copies of one episode.
        assert len({r.final_accuracy for r in first}) > 1
