"""Lambda sweep runner and the Fig.-1 timeline renderer."""

import numpy as np
import pytest

from repro.baselines import FixedPriceMechanism
from repro.core.mechanism import Observation
from repro.experiments.figures import render_lambda_sweep, render_round_timeline
from repro.experiments.preference import run_lambda_sweep


def step_result(env, prices):
    """Step through the Gymnasium-style API, returning the StepResult."""
    *_, info = env.step(prices)
    return info["step_result"]



class TestLambdaSweep:
    def test_tiny_sweep(self):
        result = run_lambda_sweep(
            lams=(500.0, 4000.0), n_nodes=3, budget=10.0,
            train_episodes=2, eval_episodes=1, seed=0, max_rounds=60,
        )
        assert len(result.rows) == 2
        payload = result.to_payload()
        assert payload["rows"][0]["lambda"] == 500.0
        assert 0 <= payload["rows"][0]["accuracy"] <= 1

    def test_render(self):
        result = run_lambda_sweep(
            lams=(500.0,), n_nodes=3, budget=10.0,
            train_episodes=1, eval_episodes=1, seed=0, max_rounds=60,
        )
        text = render_lambda_sweep(result)
        assert "lambda" in text and "500" in text

    def test_invalid_lambda(self):
        with pytest.raises(ValueError):
            run_lambda_sweep(lams=(0.0,), train_episodes=1, eval_episodes=1)


class TestRoundTimeline:
    def test_renders_participants(self, surrogate_env):
        env = surrogate_env.env
        mech = FixedPriceMechanism(env, markup=2.0)
        state, _ = env.reset()
        obs = Observation(state, env.ledger.remaining, 0)
        result = step_result(env, mech.propose_prices(obs))
        text = render_round_timeline(result)
        assert "makespan" in text
        assert text.count("node") == env.n_nodes
        assert "#" in text

    def test_declined_nodes_marked(self, surrogate_env):
        env = surrogate_env.env
        env.reset()
        prices = np.sqrt(env.price_floors * env.price_caps)
        prices[0] = 0.0
        result = step_result(env, prices)
        text = render_round_timeline(result)
        assert "(declined)" in text

    def test_no_participants(self, surrogate_env):
        env = surrogate_env.env
        env.reset()
        result = step_result(env, np.zeros(env.n_nodes))
        assert "no participants" in render_round_timeline(result)
