"""Text rendering of figures and tables."""

import numpy as np
import pytest

from repro.experiments.figures import format_table, sparkline


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        assert sparkline([2.0, 2.0, 2.0]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline(np.linspace(0, 1, 8))
        codes = [ord(c) for c in line]
        assert codes == sorted(codes)
        assert line[0] == "▁" and line[-1] == "█"

    def test_downsamples_to_width(self):
        assert len(sparkline(np.arange(500), width=40)) == 40

    def test_short_series_not_padded(self):
        assert len(sparkline([1.0, 5.0])) == 2


class TestFormatTable:
    def test_alignment_and_headers(self):
        out = format_table(["a", "metric"], [[1, 0.5], [22, 0.25]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "metric" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_float_formatting(self):
        out = format_table(["x"], [[0.123456]])
        assert "0.123" in out

    def test_large_and_tiny_floats_use_sig_figs(self):
        out = format_table(["x"], [[123456.0], [0.000123]])
        assert "1.23e" in out or "123000" in out.replace(",", "")
        assert "0.000123" in out

    def test_strings_pass_through(self):
        out = format_table(["name"], [["chiron"]])
        assert "chiron" in out


class TestRenderers:
    def test_render_convergence(self):
        from repro.experiments.convergence import ConvergenceResult
        from repro.experiments.figures import render_convergence
        from repro.experiments.results import TrainingHistory

        result = ConvergenceResult(
            mechanism="chiron",
            task="mnist",
            n_nodes=5,
            budget=60.0,
            rewards=np.linspace(0, 10, 30),
            smoothed=np.linspace(0, 10, 30),
            history=TrainingHistory("chiron"),
        )
        text = render_convergence(result)
        assert "chiron" in text and "mnist" in text
        assert result.improved > 0

    def test_render_table1(self):
        from repro.experiments.figures import render_table1
        from repro.experiments.results import EvaluationSummary
        from repro.experiments.table1 import Table1Result

        summary = EvaluationSummary(
            mechanism="chiron",
            n_episodes=2,
            accuracy_mean=0.93,
            accuracy_std=0.01,
            rounds_mean=20.0,
            rounds_std=1.0,
            efficiency_mean=0.72,
            efficiency_std=0.02,
            time_mean=500.0,
            utility_mean=1500.0,
        )
        result = Table1Result(n_nodes=100, budgets=[140.0], rows=[summary])
        text = render_table1(result)
        assert "Table I" in text
        assert "0.916" in text  # paper reference column
        assert "0.930" in text  # measured column
