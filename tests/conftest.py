"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import build_environment
from repro.economics.hardware import HardwareProfile, sample_profiles


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0)


@pytest.fixture
def profile() -> HardwareProfile:
    """One deterministic mid-range hardware profile."""
    return HardwareProfile(
        node_id=0,
        cycles_per_bit=20.0,
        bits_per_epoch=6.0e7,
        capacitance=2e-28,
        zeta_min=1.5e8,
        zeta_max=1.5e9,
        comm_time=15.0,
        comm_power=0.002,
        reserve_utility=0.01,
    )


@pytest.fixture
def profiles():
    """A small deterministic fleet."""
    return sample_profiles(5, rng=0)


@pytest.fixture
def surrogate_env():
    """Small surrogate-mode environment, fresh per test."""
    return build_environment(
        task_name="mnist",
        n_nodes=4,
        budget=20.0,
        accuracy_mode="surrogate",
        seed=0,
        max_rounds=120,
    )
