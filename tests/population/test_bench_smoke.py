"""Population benchmark smoke: tiny sizes, real identity + report checks."""

import json

import pytest

from repro.bench.population import (
    IDENTITY_ATOL,
    check_report,
    run_population_benchmark,
)

pytestmark = [pytest.mark.population, pytest.mark.bench]


@pytest.fixture(scope="module")
def report():
    return run_population_benchmark(
        sizes=(5, 200), rounds=5, warmup_rounds=1, object_max_nodes=200
    )


class TestSmokeRun:
    def test_identity_holds_at_every_measured_size(self, report):
        assert report["identity_ok"]
        for entry in report["results"]:
            assert entry["identity_max_abs_gap"] <= IDENTITY_ATOL

    def test_all_sizes_present(self, report):
        assert [e["n_nodes"] for e in report["results"]] == [5, 200]
        for entry in report["results"]:
            assert entry["object_mode"] == "measured"
            assert entry["soa_seconds"] > 0
            assert entry["speedup_soa_vs_object"] > 0

    def test_report_is_json_serializable(self, report):
        parsed = json.loads(json.dumps(report))
        assert parsed["benchmark"] == "population"

    def test_extrapolation_above_object_max(self):
        report = run_population_benchmark(
            sizes=(5, 50, 400), rounds=3, warmup_rounds=1, object_max_nodes=50
        )
        modes = {
            e["n_nodes"]: e["object_mode"] for e in report["results"]
        }
        assert modes == {5: "measured", 50: "measured", 400: "extrapolated"}
        last = report["results"][-1]
        base = report["results"][-2]
        assert last["object_seconds"] == pytest.approx(
            base["object_seconds"] * 400 / 50
        )


class TestCheckReport:
    def test_clean_report_with_lenient_floor(self, report):
        assert check_report(report, min_speedup=0.0) == []

    def test_speedup_floor_enforced(self, report):
        failures = check_report(report, min_speedup=1e9)
        assert any("below the" in f for f in failures)

    def test_identity_failure_reported(self, report):
        broken = dict(report, identity_ok=False)
        assert any("identity" in f for f in check_report(broken, 0.0))

    def test_sublinear_failure_reported(self, report):
        broken = dict(
            report,
            scaling={
                "size_ratio": 10.0,
                "soa_time_ratio": 20.0,
                "sublinear": False,
            },
        )
        assert any("sublinear" in f for f in check_report(broken, 0.0))
