"""Clustered/tiered populations: fixed-K summaries + hierarchical pricing."""

import numpy as np
import pytest

from repro.population import (
    CLUSTER_KEYS,
    SUMMARY_FEATURES,
    SoAPopulation,
    cluster_population,
)

pytestmark = pytest.mark.population

SIGMA = 5


@pytest.fixture
def population():
    return SoAPopulation.sample(20, rng=np.random.default_rng(8))


class TestAssignment:
    def test_partition_is_complete_and_balanced(self, population):
        view = cluster_population(population, 4)
        sizes = view.sizes()
        assert sizes.sum() == population.n_nodes
        assert sizes.max() - sizes.min() <= 1

    def test_assignment_is_deterministic(self, population):
        a = cluster_population(population, 4).assignments
        b = cluster_population(population, 4).assignments
        assert np.array_equal(a, b)

    def test_tiers_are_ordered_by_key(self, population):
        view = cluster_population(population, 4, by="zeta_max")
        key = population.column("zeta_max")
        tier_maxes = [key[view.members(c)].max() for c in range(4)]
        tier_mins = [key[view.members(c)].min() for c in range(4)]
        for c in range(3):
            assert tier_maxes[c] <= tier_mins[c + 1]

    def test_k_clamped_to_fleet_size(self):
        pop = SoAPopulation.sample(3, rng=np.random.default_rng(1))
        view = cluster_population(pop, 10)
        assert view.n_clusters == 3
        assert np.array_equal(np.sort(np.unique(view.assignments)), [0, 1, 2])

    def test_every_key_supported(self, population):
        for key in CLUSTER_KEYS:
            view = cluster_population(population, 3, by=key)
            assert view.sizes().sum() == population.n_nodes

    def test_unknown_key_rejected(self, population):
        with pytest.raises(ValueError, match="unknown cluster key"):
            cluster_population(population, 3, by="karma")

    def test_members_out_of_range(self, population):
        view = cluster_population(population, 4)
        with pytest.raises(IndexError):
            view.members(4)

    def test_assignments_read_only(self, population):
        view = cluster_population(population, 4)
        with pytest.raises(ValueError):
            view.assignments[0] = 0

    def test_population_method_equivalent(self, population):
        via_method = population.cluster_view(4, by="comm_time")
        via_function = cluster_population(population, 4, by="comm_time")
        assert np.array_equal(via_method.assignments, via_function.assignments)


class TestAggregation:
    def test_aggregate_mean_matches_numpy(self, population):
        view = cluster_population(population, 4)
        values = population.column("comm_time")
        means = view.aggregate(values)
        for c in range(4):
            assert means[c] == pytest.approx(values[view.members(c)].mean())

    def test_aggregate_sum(self, population):
        view = cluster_population(population, 4)
        values = population.column("bits_per_epoch")
        assert view.aggregate(values, how="sum").sum() == pytest.approx(
            values.sum()
        )

    def test_aggregate_shape_checked(self, population):
        view = cluster_population(population, 4)
        with pytest.raises(ValueError, match="shape"):
            view.aggregate(np.ones(7))

    def test_summaries_shape_fixed_by_k(self, population):
        view = cluster_population(population, 4)
        summary = view.summaries(SIGMA)
        assert summary.shape == (4, len(SUMMARY_FEATURES))
        # size fractions are a simplex over clusters
        assert summary[:, 0].sum() == pytest.approx(1.0)

    def test_summaries_shape_independent_of_n(self):
        small = SoAPopulation.sample(10, rng=np.random.default_rng(2))
        large = SoAPopulation.sample(500, rng=np.random.default_rng(3))
        shape_small = cluster_population(small, 5).summaries(SIGMA).shape
        shape_large = cluster_population(large, 5).summaries(SIGMA).shape
        assert shape_small == shape_large == (5, len(SUMMARY_FEATURES))


class TestHierarchicalPricing:
    def test_expand_prices_broadcasts_assignment(self, population):
        view = cluster_population(population, 4)
        cluster_prices = np.array([1.0, 2.0, 3.0, 4.0])
        expanded = view.expand_prices(cluster_prices)
        assert expanded.shape == (population.n_nodes,)
        assert np.array_equal(
            expanded, cluster_prices[view.assignments]
        )

    def test_expand_prices_shape_checked(self, population):
        view = cluster_population(population, 4)
        with pytest.raises(ValueError, match="shape"):
            view.expand_prices(np.ones(3))

    def test_respond_equals_expanded_flat_respond(self, population):
        view = cluster_population(population, 4)
        caps = population.price_caps(SIGMA)
        cluster_prices = np.array(
            [caps[view.members(c)].mean() for c in range(4)]
        )
        via_view = view.respond(cluster_prices, SIGMA)
        via_flat = population.respond(
            view.expand_prices(cluster_prices), SIGMA
        )
        assert np.array_equal(via_view.payment, via_flat.payment)
        assert np.array_equal(via_view.zeta, via_flat.zeta)

    def test_cluster_payments_sum_to_total(self, population):
        view = cluster_population(population, 4)
        cluster_prices = np.full(4, population.price_caps(SIGMA).mean())
        batch = view.respond(cluster_prices, SIGMA)
        per_cluster = view.cluster_payments(batch)
        assert per_cluster.shape == (4,)
        assert per_cluster.sum() == pytest.approx(batch.total_payment())
