"""Backend identity: SoA column math == per-node object loop, bit for bit.

The API redesign's central claim (docs/population.md): both
:class:`~repro.population.Population` backends compute the same
:class:`~repro.population.NodeResponseBatch` on any price vector —
including the ζ-clamping edges, declined nodes, zero prices, and fleets
under the fault pipeline.  The differential matrix proves it for whole
committed episodes; these tests prove it property-style over random
fleets and prices, and at N=1000 under the invariant auditor.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import BuildConfig
from repro.economics import node_response, sample_profiles
from repro.faults import FaultConfig
from repro.population import ObjectPopulation, SoAPopulation
from repro.testing import InvariantAuditor, auditing
from repro.testing.scenarios import price_schedule

pytestmark = pytest.mark.population

SIGMA = 5


def _pair(n, seed):
    """The same fleet on both backends (same generator state)."""
    obj = ObjectPopulation.sample(n, rng=np.random.default_rng(seed))
    soa = SoAPopulation.sample(n, rng=np.random.default_rng(seed))
    return obj, soa


def assert_batches_identical(a, b):
    assert np.array_equal(a.participates, b.participates)
    for field in ("zeta", "utility", "payment", "time", "energy"):
        lhs, rhs = getattr(a, field), getattr(b, field)
        assert np.array_equal(lhs, rhs), (
            f"{field} diverged: max|Δ|="
            f"{np.max(np.abs(np.nan_to_num(lhs - rhs)))}"
        )


class TestSampledFleetsAgree:
    def test_same_stream_same_fleet(self):
        obj, soa = _pair(12, seed=3)
        for name in ("zeta_min", "zeta_max", "comm_time", "bits_per_epoch"):
            assert np.array_equal(obj.column(name), soa.column(name))

    @given(
        seed=st.integers(0, 200),
        price_scale=st.floats(0.0, 3.0),
        sigma=st.integers(1, 10),
    )
    @settings(max_examples=80, deadline=None)
    def test_respond_identical_random_prices(self, seed, price_scale, sigma):
        """Element-wise identical batches across regimes (0 → 3× cap)."""
        obj, soa = _pair(8, seed)
        rng = np.random.default_rng(seed + 1)
        prices = price_scale * soa.price_caps(sigma) * rng.uniform(0, 1, 8)
        assert_batches_identical(
            obj.respond(prices, sigma), soa.respond(prices, sigma)
        )

    @given(seed=st.integers(0, 100))
    @settings(max_examples=40, deadline=None)
    def test_clamp_edges_identical(self, seed):
        """Prices exactly at κζ_min / κζ_max — the clip boundaries."""
        obj, soa = _pair(6, seed)
        kappa = soa.kappa(SIGMA)
        for prices in (
            kappa * soa.column("zeta_min"),
            kappa * soa.column("zeta_max"),
            np.zeros(6),
            soa.price_floors(SIGMA),
        ):
            a = obj.respond(prices, SIGMA)
            b = soa.respond(prices, SIGMA)
            assert_batches_identical(a, b)

    def test_zeta_stays_clamped_on_both(self):
        obj, soa = _pair(10, seed=17)
        prices = 10.0 * soa.price_caps(SIGMA)  # deep saturation
        for batch in (obj.respond(prices, SIGMA), soa.respond(prices, SIGMA)):
            assert np.array_equal(batch.zeta, soa.column("zeta_max"))
        prices = np.zeros(10)  # deep decline / floor regime
        for batch in (obj.respond(prices, SIGMA), soa.respond(prices, SIGMA)):
            assert np.all(batch.zeta == soa.column("zeta_min"))

    def test_matches_scalar_node_response(self):
        """Both backends reproduce the scalar reference per node."""
        profiles = sample_profiles(7, rng=np.random.default_rng(5))
        obj = ObjectPopulation(profiles)
        soa = SoAPopulation.from_profiles(profiles)
        rng = np.random.default_rng(6)
        prices = rng.uniform(0, 2, 7) * soa.price_caps(SIGMA)
        batch_obj = obj.respond(prices, SIGMA)
        batch_soa = soa.respond(prices, SIGMA)
        for i, p in enumerate(profiles):
            ref = node_response(p, float(prices[i]), SIGMA)
            for batch in (batch_obj, batch_soa):
                assert batch.participates[i] == ref.participates
                assert batch.zeta[i] == ref.zeta
                assert batch.utility[i] == ref.utility
                assert batch.payment[i] == ref.payment
                assert batch.energy[i] == ref.energy
                assert batch.time[i] == ref.time


class TestEnvironmentsAgree:
    def _run(self, backend, faults):
        config = BuildConfig(
            n_nodes=5,
            budget=18.0,
            seed=321,
            availability=0.9,
            faults=FaultConfig.mixed(0.25, seed=11) if faults else None,
            population_backend=backend,
        )
        env = config.build().env
        schedule = price_schedule(env, 12, seed=13)
        env.reset(seed=77)
        rows = []
        for prices in schedule:
            obs, reward, terminated, truncated, info = env.step(prices)
            result = info["step_result"]
            rows.append(
                (
                    obs.copy(),
                    reward,
                    float(result.payments.sum()),
                    result.remaining_budget,
                    tuple(result.participants),
                    tuple(result.delivered),
                )
            )
            if terminated or truncated:
                break
        return rows

    @pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulted"])
    def test_env_identical_across_backends(self, faults):
        soa_rows = self._run("soa", faults)
        obj_rows = self._run("object", faults)
        assert len(soa_rows) == len(obj_rows)
        for row_a, row_b in zip(soa_rows, obj_rows):
            assert np.array_equal(row_a[0], row_b[0])  # observations
            assert row_a[1:] == row_b[1:]  # reward, payments, budget, ids


class TestLargeFleetAudited:
    def test_auditor_clean_at_n1000(self):
        """N=1000 SoA episode passes every paper invariant (N1-N3, B, Eqn 9)."""
        env = BuildConfig(n_nodes=1000, budget=500.0, seed=9).build().env
        auditor = InvariantAuditor(env)
        prices = price_schedule(env, 5, seed=21)
        with auditing():
            auditor.reset(seed=4)
            for row in prices:
                _, _, terminated, truncated, _ = auditor.step(row)
                if terminated or truncated:
                    break
        assert auditor.rounds_audited > 0

    def test_backends_agree_at_n1000(self):
        obj, soa = _pair(1000, seed=31)
        rng = np.random.default_rng(32)
        prices = rng.uniform(0, 1.5, 1000) * soa.price_caps(SIGMA)
        assert_batches_identical(
            obj.respond(prices, SIGMA), soa.respond(prices, SIGMA)
        )
