"""Population protocol surface: coercion, columns, batches, deprecation."""

import numpy as np
import pytest

from repro.economics import min_participation_price, sample_profiles
from repro.population import (
    COLUMNS,
    NodeResponseBatch,
    ObjectPopulation,
    Population,
    SoAPopulation,
    as_population,
    columns_from_profiles,
    warn_raw_node_access,
)
from repro.population.api import _RAW_ACCESS_WARNED

pytestmark = pytest.mark.population

SIGMA = 5


@pytest.fixture
def profiles():
    return sample_profiles(6, rng=np.random.default_rng(42))


@pytest.fixture(params=["soa", "object"])
def population(request, profiles):
    return as_population(profiles, backend=request.param)


class TestCoercion:
    def test_profiles_to_soa(self, profiles):
        pop = as_population(profiles, backend="soa")
        assert isinstance(pop, SoAPopulation)
        assert pop.n_nodes == len(profiles)

    def test_profiles_to_object(self, profiles):
        pop = as_population(profiles, backend="object")
        assert isinstance(pop, ObjectPopulation)
        assert pop.profiles()[0] is profiles[0]

    def test_existing_population_passes_through(self, profiles):
        pop = as_population(profiles, backend="object")
        # backend hint is ignored for an existing population
        assert as_population(pop, backend="soa") is pop

    def test_unknown_backend_rejected(self, profiles):
        with pytest.raises(ValueError, match="unknown population backend"):
            as_population(profiles, backend="gpu")

    def test_both_backends_satisfy_protocol(self, population):
        assert isinstance(population, Population)

    def test_len(self, population):
        assert len(population) == population.n_nodes


class TestColumns:
    def test_every_declared_column_exists(self, population, profiles):
        for name in COLUMNS:
            col = population.column(name)
            assert col.shape == (len(profiles),)

    def test_columns_round_trip_profiles_exactly(self, profiles):
        cols = columns_from_profiles(profiles)
        for i, p in enumerate(profiles):
            assert cols["zeta_max"][i] == p.zeta_max
            assert cols["comm_time"][i] == p.comm_time
            assert cols["reserve_utility"][i] == p.reserve_utility

    def test_columns_are_read_only(self, population):
        with pytest.raises(ValueError):
            population.column("zeta_max")[0] = 1.0

    def test_unknown_column_rejected(self, population):
        with pytest.raises(KeyError, match="unknown population column"):
            population.column("gpu_flops")

    def test_profile_materialization_round_trips(self, profiles):
        pop = as_population(profiles, backend="soa")
        for original, back in zip(profiles, pop.profiles()):
            assert back.zeta_min == original.zeta_min
            assert back.zeta_max == original.zeta_max
            assert back.bits_per_epoch == original.bits_per_epoch
            assert back.kappa(SIGMA) == original.kappa(SIGMA)
        assert pop.profile(2).node_id == profiles[2].node_id

    def test_empty_profile_list_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            columns_from_profiles([])


class TestFleetScales:
    def test_kappa_matches_scalar(self, population, profiles):
        kappa = population.kappa(SIGMA)
        for i, p in enumerate(profiles):
            assert kappa[i] == p.kappa(SIGMA)

    def test_price_floors_match_min_participation_price(
        self, population, profiles
    ):
        floors = population.price_floors(SIGMA)
        for i, p in enumerate(profiles):
            assert floors[i] == min_participation_price(p, SIGMA)

    def test_price_caps(self, population, profiles):
        caps = population.price_caps(SIGMA)
        for i, p in enumerate(profiles):
            assert caps[i] == p.kappa(SIGMA) * p.zeta_max

    def test_characteristic_time_positive(self, population):
        assert population.characteristic_time(SIGMA) > 0.0


class TestRespondValidation:
    def test_wrong_shape_rejected(self, population):
        with pytest.raises(ValueError, match="shape"):
            population.respond(np.ones(population.n_nodes + 1), SIGMA)

    def test_negative_price_rejected(self, population):
        prices = np.ones(population.n_nodes)
        prices[0] = -0.5
        with pytest.raises(ValueError, match="finite and non-negative"):
            population.respond(prices, SIGMA)

    def test_nan_price_rejected(self, population):
        prices = np.ones(population.n_nodes)
        prices[1] = np.nan
        with pytest.raises(ValueError, match="finite and non-negative"):
            population.respond(prices, SIGMA)


class TestBatchHelpers:
    def _batch(self):
        participates = np.array([True, False, True, True])
        return NodeResponseBatch(
            participates=participates,
            zeta=np.array([1.0, 0.5, 2.0, 1.5]),
            utility=np.array([0.3, 0.0, 0.4, 0.1]),
            payment=np.array([2.0, 0.0, 3.0, 1.0]),
            time=np.array([5.0, np.inf, 4.0, 6.0]),
            energy=np.array([1.7, 0.0, 2.6, 0.9]),
        )

    def test_n_nodes(self):
        assert self._batch().n_nodes == 4

    def test_participant_ids_sorted(self):
        assert self._batch().participant_ids() == [0, 2, 3]

    def test_total_payment(self):
        assert self._batch().total_payment() == pytest.approx(6.0)

    def test_total_payment_masked(self):
        mask = np.array([True, True, False, True])
        assert self._batch().total_payment(mask) == pytest.approx(3.0)


class TestSpawn:
    def test_sampled_population_spawns_same_shape(self):
        pop = SoAPopulation.sample(5, rng=np.random.default_rng(0))
        child = pop.spawn(seed=99)
        assert child.n_nodes == 5
        assert not np.array_equal(
            child.column("zeta_max"), pop.column("zeta_max")
        )

    def test_spawn_is_seed_deterministic(self):
        pop = ObjectPopulation.sample(4, rng=np.random.default_rng(0))
        a, b = pop.spawn(seed=7), pop.spawn(seed=7)
        assert np.array_equal(a.column("zeta_max"), b.column("zeta_max"))

    def test_profile_built_population_cannot_spawn(self, profiles):
        pop = as_population(profiles, backend="soa")
        with pytest.raises(TypeError, match="HardwareSpec"):
            pop.spawn(seed=1)


class TestDeprecationWarnings:
    def test_raw_access_warns_once_per_surface(self):
        _RAW_ACCESS_WARNED.discard("test.surface")
        with pytest.warns(DeprecationWarning, match="docs/api.md"):
            warn_raw_node_access("test.surface", "Population.column")
        # second call on the same surface is silent
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            warn_raw_node_access("test.surface", "Population.column")

    def test_warning_names_removal_version(self):
        _RAW_ACCESS_WARNED.discard("test.versioned")
        with pytest.warns(DeprecationWarning, match="removal in v2.0"):
            warn_raw_node_access("test.versioned", "Population.column")
