"""Accuracy substrates: surrogate curve and real training, shared interface."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl import (
    LearningProcess,
    SURROGATE_CURVES,
    SurrogateAccuracy,
    SurrogateCurve,
    build_learning_process,
)


class TestSurrogateCurve:
    def test_anchors(self):
        curve = SurrogateCurve(a_init=0.1, a_max=0.9, tau=1.0, beta=1.0)
        assert curve.accuracy(0.0) == pytest.approx(0.1)
        assert curve.accuracy(1e9) == pytest.approx(0.9, abs=1e-6)

    @given(
        e1=st.floats(0, 100),
        e2=st.floats(0, 100),
    )
    @settings(max_examples=50, deadline=None)
    def test_monotone_property(self, e1, e2):
        curve = SURROGATE_CURVES["mnist"]
        lo, hi = sorted((e1, e2))
        assert curve.accuracy(lo) <= curve.accuracy(hi) + 1e-12

    @given(e=st.floats(0, 1000))
    @settings(max_examples=50, deadline=None)
    def test_bounded_property(self, e):
        for curve in SURROGATE_CURVES.values():
            assert curve.a_init - 1e-12 <= curve.accuracy(e) <= curve.a_max + 1e-12

    def test_diminishing_returns(self):
        curve = SURROGATE_CURVES["mnist"]
        gains = [
            curve.accuracy(e + 1) - curve.accuracy(e) for e in (0.0, 2.0, 5.0, 10.0)
        ]
        assert all(b < a for a, b in zip(gains, gains[1:]))

    def test_difficulty_ordering(self):
        # Task ceilings respect MNIST > Fashion > CIFAR.
        assert (
            SURROGATE_CURVES["mnist"].a_max
            > SURROGATE_CURVES["fashion_mnist"].a_max
            > SURROGATE_CURVES["cifar10"].a_max
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SurrogateCurve(a_init=0.5, a_max=0.4, tau=1.0, beta=1.0)
        with pytest.raises(ValueError):
            SurrogateCurve(a_init=0.1, a_max=0.9, tau=0.0, beta=1.0)
        curve = SurrogateCurve(a_init=0.1, a_max=0.9, tau=1.0, beta=1.0)
        with pytest.raises(ValueError):
            curve.accuracy(-1.0)


class TestSurrogateAccuracy:
    def make(self, weights=(0.25, 0.25, 0.5)):
        return SurrogateAccuracy(
            SURROGATE_CURVES["mnist"], np.asarray(weights), rng=0
        )

    def test_protocol_conformance(self):
        assert isinstance(self.make(), LearningProcess)

    def test_reset(self):
        proc = self.make()
        proc.step([0, 1, 2])
        assert proc.reset() == pytest.approx(SURROGATE_CURVES["mnist"].a_init)
        assert proc.effective_rounds == 0.0

    def test_full_participation_advances_by_one(self):
        proc = self.make()
        proc.reset()
        proc.step([0, 1, 2])
        assert proc.effective_rounds == pytest.approx(1.0)

    def test_partial_participation_advances_by_weight(self):
        proc = self.make()
        proc.reset()
        proc.step([2])
        assert proc.effective_rounds == pytest.approx(0.5)

    def test_partial_learns_slower(self):
        full = self.make()
        full.reset()
        partial = self.make()
        partial.reset()
        for _ in range(5):
            a_full = full.step([0, 1, 2])
            a_partial = partial.step([0])
        assert a_full > a_partial

    def test_invalid_participants(self):
        proc = self.make()
        proc.reset()
        with pytest.raises(ValueError):
            proc.step([])
        with pytest.raises(IndexError):
            proc.step([9])

    def test_weights_must_be_simplex(self):
        with pytest.raises(ValueError):
            SurrogateAccuracy(SURROGATE_CURVES["mnist"], np.array([0.5, 0.2]))

    def test_seeded_reproducibility(self):
        a = SurrogateAccuracy(SURROGATE_CURVES["mnist"], np.ones(4) / 4, rng=5)
        b = SurrogateAccuracy(SURROGATE_CURVES["mnist"], np.ones(4) / 4, rng=5)
        a.reset(), b.reset()
        for _ in range(5):
            assert a.step([0, 1]) == b.step([0, 1])


class TestFactory:
    def test_builds_all_tasks(self):
        for name in SURROGATE_CURVES:
            proc = build_learning_process(name, np.ones(3) / 3, rng=0)
            assert proc.num_nodes == 3

    def test_unknown_task(self):
        with pytest.raises(ValueError, match="no surrogate curve"):
            build_learning_process("svhn", np.ones(2) / 2)

    def test_custom_curve_override(self):
        curve = SurrogateCurve(a_init=0.2, a_max=0.5, tau=1.0, beta=1.0)
        proc = build_learning_process("mnist", np.ones(2) / 2, curve=curve)
        assert proc.reset() == pytest.approx(0.2)
