"""Robust aggregation rules and FedProx local training."""

from collections import OrderedDict

import numpy as np
import pytest

from repro.fl import (
    fedavg,
    get_aggregator,
    median_aggregate,
    trimmed_mean_aggregate,
)


def state(scale):
    return OrderedDict([("w", np.full((2,), float(scale)))])


class TestMedian:
    def test_coordinatewise_median(self):
        merged = median_aggregate([state(1), state(2), state(100)])
        np.testing.assert_allclose(merged["w"], 2.0)

    def test_robust_to_poisoned_minority(self):
        honest = [state(1.0), state(1.1), state(0.9)]
        poisoned = state(1e9)
        merged = median_aggregate(honest + [poisoned])
        assert np.abs(merged["w"]).max() < 2.0

    def test_fedavg_not_robust(self):
        honest = [state(1.0), state(1.1), state(0.9)]
        poisoned = state(1e9)
        merged = fedavg(honest + [poisoned], [1, 1, 1, 1])
        assert np.abs(merged["w"]).max() > 1e8  # the contrast with median

    def test_weights_ignored(self):
        a = median_aggregate([state(1), state(5)], [1.0, 100.0])
        b = median_aggregate([state(1), state(5)])
        np.testing.assert_allclose(a["w"], b["w"])


class TestTrimmedMean:
    def test_trims_tails(self):
        states = [state(v) for v in (0.0, 1.0, 2.0, 3.0, 1000.0)]
        merged = trimmed_mean_aggregate(states, trim_ratio=0.2)
        np.testing.assert_allclose(merged["w"], 2.0)  # mean of 1,2,3

    def test_zero_trim_is_mean(self):
        states = [state(v) for v in (1.0, 3.0)]
        merged = trimmed_mean_aggregate(states, trim_ratio=0.0)
        np.testing.assert_allclose(merged["w"], 2.0)

    def test_ratio_validated(self):
        with pytest.raises(ValueError):
            trimmed_mean_aggregate([state(1)], trim_ratio=0.5)

    def test_key_mismatch(self):
        with pytest.raises(KeyError):
            trimmed_mean_aggregate(
                [state(1), OrderedDict([("other", np.zeros(2))])]
            )


class TestFactory:
    def test_resolves_all(self):
        assert get_aggregator("fedavg") is fedavg
        assert get_aggregator("median") is median_aggregate
        rule = get_aggregator("trimmed_mean", trim_ratio=0.25)
        merged = rule([state(v) for v in (0, 1, 2, 3)], [1] * 4)
        np.testing.assert_allclose(merged["w"], 1.5)

    def test_unknown(self):
        with pytest.raises(ValueError, match="unknown aggregation rule"):
            get_aggregator("krum")


class TestServerWithCustomAggregator:
    def test_median_server(self):
        from repro.datasets import make_task
        from repro.fl import ParameterServer
        from repro.nn import McMahanCNN

        task = make_task("mnist", rng=0)
        _, test = task.train_test_split(10, 20, rng=1)
        server = ParameterServer(
            lambda: McMahanCNN(rng=2), test, aggregator=median_aggregate
        )
        s1 = server.broadcast()
        poisoned = {k: v + 1e6 for k, v in s1.items()}
        server.aggregate([s1, s1, poisoned], [1, 1, 1])
        # Median of (x, x, x+1e6) is x — the poisoned update is ignored.
        for key, value in server.broadcast().items():
            np.testing.assert_allclose(value, s1[key])


class TestFedProx:
    def make_node(self, mu):
        from repro.datasets import make_task
        from repro.economics import sample_profiles
        from repro.fl import EdgeNode, LocalTrainingConfig
        from repro.nn import McMahanCNN

        task = make_task("mnist", rng=0)
        data = task.sample(30, rng=1)
        profile = sample_profiles(1, rng=2)[0]
        config = LocalTrainingConfig(
            local_epochs=2, batch_size=10, proximal_mu=mu
        )
        node = EdgeNode(0, data, profile, config, rng=3)
        model = McMahanCNN(rng=4)
        return node, model

    def test_proximal_term_anchors_update(self):
        node_plain, model_plain = self.make_node(mu=0.0)
        node_prox, model_prox = self.make_node(mu=10.0)
        start = model_plain.state_dict()

        plain = node_plain.local_update(model_plain, start)
        prox = node_prox.local_update(model_prox, start)

        def drift(state):
            return sum(
                float(np.abs(state[k] - start[k]).sum()) for k in start
            )

        # A strong proximal term keeps the update closer to the anchor.
        assert drift(prox) < drift(plain)

    def test_mu_validated(self):
        from repro.fl import LocalTrainingConfig

        with pytest.raises(ValueError):
            LocalTrainingConfig(proximal_mu=-1.0)
