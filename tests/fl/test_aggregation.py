"""FedAvg aggregation (Eqn 4)."""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fl import fedavg


def make_state(scale):
    return OrderedDict(
        [("w", np.full((2, 2), float(scale))), ("b", np.full(3, float(scale)))]
    )


class TestFedAvg:
    def test_weighted_mean(self):
        merged = fedavg([make_state(0.0), make_state(10.0)], [1.0, 3.0])
        np.testing.assert_allclose(merged["w"], 7.5)
        np.testing.assert_allclose(merged["b"], 7.5)

    def test_weights_scale_invariant(self):
        a = fedavg([make_state(1.0), make_state(5.0)], [2.0, 6.0])
        b = fedavg([make_state(1.0), make_state(5.0)], [1.0, 3.0])
        np.testing.assert_allclose(a["w"], b["w"])

    def test_single_state_identity(self):
        state = make_state(3.3)
        merged = fedavg([state], [7.0])
        np.testing.assert_allclose(merged["w"], state["w"])

    def test_key_order_preserved(self):
        merged = fedavg([make_state(1.0)], [1.0])
        assert list(merged.keys()) == ["w", "b"]

    def test_zero_weight_node_ignored(self):
        merged = fedavg([make_state(1.0), make_state(100.0)], [1.0, 0.0])
        np.testing.assert_allclose(merged["w"], 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fedavg([], [])
        with pytest.raises(ValueError):
            fedavg([make_state(1.0)], [1.0, 2.0])
        with pytest.raises(ValueError):
            fedavg([make_state(1.0)], [-1.0])
        with pytest.raises(ValueError):
            fedavg([make_state(1.0), make_state(2.0)], [0.0, 0.0])

    def test_key_mismatch(self):
        bad = OrderedDict([("other", np.zeros(2))])
        with pytest.raises(KeyError):
            fedavg([make_state(1.0), bad], [1.0, 1.0])

    def test_rejects_nonfinite(self):
        state = make_state(np.inf)
        with pytest.raises(ValueError):
            fedavg([state], [1.0])

    @given(
        scales=st.lists(st.floats(-5, 5), min_size=2, max_size=5),
        seed=st.integers(0, 20),
    )
    @settings(max_examples=40, deadline=None)
    def test_convexity_property(self, scales, seed):
        """The average lies within the convex hull of the inputs."""
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.1, 1.0, size=len(scales))
        merged = fedavg([make_state(s) for s in scales], weights)
        assert merged["w"].min() >= min(scales) - 1e-9
        assert merged["w"].max() <= max(scales) + 1e-9


class TestNonFiniteInputGuard:
    """A single NaN update must raise, never silently poison the model."""

    def nan_state(self):
        state = make_state(1.0)
        state["w"] = state["w"].copy()
        state["w"][0, 0] = np.nan
        return state

    def test_fedavg_rejects_nan_input(self):
        with pytest.raises(ValueError, match="non-finite"):
            fedavg([make_state(1.0), self.nan_state()], [1.0, 1.0])

    def test_median_rejects_nan_input(self):
        from repro.fl import median_aggregate

        with pytest.raises(ValueError, match="non-finite"):
            median_aggregate(
                [make_state(1.0), make_state(2.0), self.nan_state()]
            )

    def test_trimmed_mean_rejects_nan_input(self):
        from repro.fl import trimmed_mean_aggregate

        with pytest.raises(ValueError, match="non-finite"):
            trimmed_mean_aggregate(
                [make_state(1.0), make_state(2.0), self.nan_state()]
            )

    def test_validate_update_screens_before_aggregation(self):
        from repro.fl.aggregation import validate_update

        reference = make_state(0.0)
        assert validate_update(make_state(1.0), reference) is None
        assert "non-finite" in validate_update(self.nan_state(), reference)
        wrong_keys = OrderedDict([("other", np.zeros(2))])
        assert "keys" in validate_update(wrong_keys, reference)
        wrong_shape = OrderedDict(
            [("w", np.zeros((3, 3))), ("b", np.zeros(3))]
        )
        assert "shape" in validate_update(wrong_shape, reference)
        # Without a reference only finiteness is checked.
        assert validate_update(wrong_keys) is None
