"""Federated pipeline: node, server, session, metrics."""

import numpy as np
import pytest

from repro.datasets import make_task, partition_dataset
from repro.economics import sample_profiles
from repro.fl import EdgeNode, FederatedSession, LocalTrainingConfig, ParameterServer, evaluate
from repro.nn import MLP, McMahanCNN


def tiny_setup(n_nodes=3, train=60, test=40, local_epochs=1):
    task = make_task("mnist", rng=0)
    train_ds, test_ds = task.train_test_split(train, test, rng=1)
    parts = partition_dataset(train_ds, n_nodes, scheme="iid", rng=2)
    profiles = sample_profiles(n_nodes, rng=3)
    server = ParameterServer(lambda: McMahanCNN(rng=4), test_ds)
    cfg = LocalTrainingConfig(local_epochs=local_epochs, batch_size=10)
    nodes = [
        EdgeNode(i, parts[i], profiles[i], cfg, rng=10 + i) for i in range(n_nodes)
    ]
    return server, nodes


class TestEvaluate:
    def test_perfect_model(self):
        """A model reading the label planted in the input scores 100%."""
        from repro.autograd import Tensor
        from repro.datasets import ArrayDataset
        from repro.nn.module import Module

        class Oracle(Module):
            def forward(self, x):
                flat = Tensor(np.asarray(x)).flatten(start_dim=1)
                return flat[:, :10] * 100.0

        rng = np.random.default_rng(0)
        y = rng.integers(0, 10, size=20)
        x = np.zeros((20, 1, 28, 28))
        x[np.arange(20), 0, 0, y] = 1.0
        ds = ArrayDataset(x, y)
        result = evaluate(Oracle(), ds)
        assert result.accuracy == 1.0
        assert result.n_samples == 20

    def test_empty_dataset(self):
        from repro.datasets import ArrayDataset

        ds = ArrayDataset(np.zeros((0, 1, 28, 28)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            evaluate(McMahanCNN(rng=0), ds)

    def test_restores_training_mode(self):
        server, _ = tiny_setup()
        server.model.train()
        server.evaluate()
        assert server.model.training


class TestEdgeNode:
    def test_id_mismatch(self):
        server, nodes = tiny_setup()
        with pytest.raises(ValueError):
            EdgeNode(5, nodes[0].dataset, nodes[0].profile)

    def test_empty_dataset_rejected(self):
        from repro.datasets import ArrayDataset

        _, nodes = tiny_setup()
        empty = ArrayDataset(np.zeros((0, 1, 28, 28)), np.zeros(0, dtype=int))
        with pytest.raises(ValueError):
            EdgeNode(0, empty, nodes[0].profile)

    def test_local_update_changes_parameters(self):
        server, nodes = tiny_setup()
        worker = server.make_worker_model()
        state = server.broadcast()
        new_state = nodes[0].local_update(worker, state)
        deltas = [np.abs(new_state[k] - state[k]).max() for k in state]
        assert max(deltas) > 0

    def test_respond_to_price_delegates(self):
        _, nodes = tiny_setup()
        response = nodes[0].respond_to_price(0.0)
        assert not response.participates

    def test_data_size(self):
        _, nodes = tiny_setup(n_nodes=3, train=60)
        assert sum(n.data_size for n in nodes) == 60


class TestServerAndSession:
    def test_round_updates_global(self):
        server, nodes = tiny_setup()
        session = FederatedSession(server, nodes)
        before = server.model.flat_parameters()
        record = session.run_round()
        assert server.round_index == 1
        assert record.round_index == 1
        assert not np.allclose(server.model.flat_parameters(), before)

    def test_partial_participation(self):
        server, nodes = tiny_setup()
        session = FederatedSession(server, nodes)
        record = session.run_round([0, 2])
        assert record.participant_ids == [0, 2]

    def test_unknown_participant(self):
        server, nodes = tiny_setup()
        session = FederatedSession(server, nodes)
        with pytest.raises(KeyError):
            session.run_round([99])

    def test_empty_participants(self):
        server, nodes = tiny_setup()
        session = FederatedSession(server, nodes)
        with pytest.raises(ValueError):
            session.run_round([])

    def test_duplicate_node_ids_rejected(self):
        server, nodes = tiny_setup()
        with pytest.raises(ValueError):
            FederatedSession(server, [nodes[0], nodes[0]])

    def test_reset_restores_initial_model(self):
        server, nodes = tiny_setup()
        session = FederatedSession(server, nodes)
        initial = server.model.flat_parameters()
        session.run_round()
        session.reset()
        np.testing.assert_allclose(server.model.flat_parameters(), initial)
        assert session.history == []
        assert server.round_index == 0

    def test_training_improves_accuracy(self):
        server, nodes = tiny_setup(train=150, test=80, local_epochs=5)
        session = FederatedSession(server, nodes)
        initial = server.evaluate().accuracy
        for _ in range(3):
            record = session.run_round()
        assert record.accuracy > initial + 0.3
