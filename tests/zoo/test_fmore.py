"""FMore auction: IR payments, monotone selection, strategyproofness hook."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mechanism import Observation
from repro.zoo.fmore import (
    FMoreAuctionMechanism,
    FMoreConfig,
    auction_scores,
    critical_payments,
    select_winners,
)

pytestmark = pytest.mark.zoo

ASKS = np.array([1.0, 1.2, 0.8, 1.5, 1.1])
QUALITIES = np.array([1.0, 2.0, 0.5, 1.5, 1.0])
TIMES = np.array([10.0, 8.0, 12.0, 9.0, 11.0])


class TestScores:
    def test_quality_monotone(self):
        base = auction_scores(ASKS, QUALITIES, TIMES)
        better = QUALITIES.copy()
        better[2] *= 2.0
        # Hold scales fixed so only bidder 2's own dimension moves.
        scales = (
            float(np.mean(QUALITIES)),
            float(np.mean(TIMES)),
            float(np.mean(ASKS)),
        )
        bumped = auction_scores(ASKS, better, TIMES, scales=scales)
        rebased = auction_scores(ASKS, QUALITIES, TIMES, scales=scales)
        assert bumped[2] > rebased[2]

    def test_higher_ask_lowers_score(self):
        scales = (1.0, 1.0, 1.0)
        low = auction_scores(ASKS, QUALITIES, TIMES, scales=scales)
        raised = ASKS.copy()
        raised[0] += 0.5
        high = auction_scores(raised, QUALITIES, TIMES, scales=scales)
        assert high[0] < low[0]
        assert np.allclose(high[1:], low[1:])

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError, match="scale must be positive"):
            auction_scores(ASKS, QUALITIES, TIMES, scales=(1.0, 0.0, 1.0))


class TestSelection:
    def test_top_k_highest_first(self):
        scores = np.array([0.1, 0.9, 0.5, 0.9, -1.0])
        winners = select_winners(scores, 3)
        # Ties break by index: both 0.9s, lower index first.
        assert winners.tolist() == [1, 3, 2]

    def test_k_larger_than_fleet(self):
        assert select_winners(np.array([1.0, 2.0]), 10).tolist() == [1, 0]

    def test_negative_k_rejected(self):
        with pytest.raises(ValueError, match="k must be >= 0"):
            select_winners(np.array([1.0]), -1)


class TestPayments:
    def test_individually_rational(self):
        scores = auction_scores(ASKS, QUALITIES, TIMES)
        k = 3
        winners = select_winners(scores, k)
        runner_up = float(np.sort(scores)[::-1][k])
        payments = critical_payments(
            scores, ASKS, winners, runner_up, 1.0, float(np.mean(ASKS))
        )
        assert np.all(payments >= ASKS[winners] - 1e-12)

    def test_payment_independent_of_own_ask(self):
        """Second-score hook: a winner's payment ignores its own ask."""
        scales = (
            float(np.mean(QUALITIES)),
            float(np.mean(TIMES)),
            float(np.mean(ASKS)),
        )
        k = 2
        bidder = 1  # highest quality; wins at either ask below

        def payment(asks):
            scores = auction_scores(asks, QUALITIES, TIMES, scales=scales)
            winners = select_winners(scores, k)
            assert bidder in winners.tolist()
            runner_up = float(np.sort(scores)[::-1][k])
            payments = critical_payments(
                scores, asks, winners, runner_up, 1.0, scales[2]
            )
            return float(payments[winners.tolist().index(bidder)])

        shaded = ASKS.copy()
        shaded[bidder] = 0.9  # bid below true cost
        assert payment(ASKS) == pytest.approx(payment(shaded), abs=1e-12)

    def test_no_runner_up_pays_own_asks(self):
        scores = np.array([2.0, 1.0])
        winners = select_winners(scores, 2)
        payments = critical_payments(
            scores, np.array([1.0, 1.5]), winners, None, 1.0, 1.0
        )
        assert payments.tolist() == [1.0, 1.5]


class TestMechanism:
    def test_spend_fits_slice_and_seeded_asks(self, zoo_env):
        mechanism = FMoreAuctionMechanism(zoo_env, rng=5)
        again = FMoreAuctionMechanism(zoo_env, rng=5)
        assert np.array_equal(mechanism._asks, again._asks)
        other = FMoreAuctionMechanism(zoo_env, rng=6)
        assert not np.array_equal(mechanism._asks, other._asks)

        state, _ = zoo_env.reset(seed=7)
        obs = Observation(state, zoo_env.ledger.remaining, zoo_env.round_index)
        mechanism.begin_episode(obs)
        prices = mechanism.propose_prices(obs)
        horizon = mechanism.config.horizon
        assert mechanism._expected_spend(prices) <= (
            obs.remaining_budget / horizon
        ) * (1 + 1e-9)
        # Every posted price is one of the (clipped) critical payments —
        # never below the winner's ask.
        posted = prices > 0.0
        assert np.all(prices[posted] >= mechanism._asks[posted] - 1e-12)

    def test_invalid_winner_fraction(self, zoo_env):
        with pytest.raises(ValueError, match="winner_fraction"):
            FMoreAuctionMechanism(
                zoo_env, FMoreConfig(winner_fraction=0.0), rng=0
            )
