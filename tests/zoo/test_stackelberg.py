"""Stackelberg leader: closed-form solver vs brute force, budget safety."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mechanism import Observation
from repro.zoo.pacing import per_round_slice
from repro.zoo.stackelberg import (
    FLOOR_LIFT,
    StackelbergConfig,
    StackelbergMechanism,
    solve_round_prices,
)

pytestmark = pytest.mark.zoo


def _leader_cost(population, prices, sigma):
    kappa = population.kappa(sigma)
    zeta = np.clip(prices / kappa, population.zeta_min, population.zeta_max)
    return float(np.where(prices > 0.0, prices * zeta, 0.0).sum())


class TestSolver:
    def test_respects_budget_slice(self, zoo_env):
        population = zoo_env.population
        sigma = zoo_env.config.local_epochs
        for budget_slice in (0.05, 0.2, 0.5, 1.0, 3.0, 10.0):
            prices, recruited, _ = solve_round_prices(
                population, sigma, budget_slice
            )
            cost = _leader_cost(population, prices, sigma)
            assert cost <= budget_slice * (1 + 1e-9)
            # Non-recruits are posted exactly zero.
            assert np.all(prices[~recruited] == 0.0)

    def test_recruits_actually_participate(self, zoo_env):
        population = zoo_env.population
        sigma = zoo_env.config.local_epochs
        prices, recruited, _ = solve_round_prices(population, sigma, 1.5)
        assert recruited.any()
        batch = population.respond(prices, sigma)
        assert np.array_equal(batch.participates, recruited)

    def test_zero_slice_recruits_nobody(self, zoo_env):
        population = zoo_env.population
        sigma = zoo_env.config.local_epochs
        prices, recruited, finish = solve_round_prices(population, sigma, 0.0)
        assert not recruited.any()
        assert np.all(prices == 0.0)
        assert finish == float("inf")

    def test_matches_brute_force_finish_time(self, zoo_env):
        """The bisected finish time matches a dense grid search over T.

        The leader's cost is monotone non-increasing in the common finish
        time T, so the optimum is the smallest feasible T; a 20k-point
        grid over the recruits' reachable times brackets it tightly.
        """
        population = zoo_env.population
        sigma = zoo_env.config.local_epochs
        kappa = population.kappa(sigma)
        work = population.work(sigma)
        comm = population.comm_time
        zeta_min, zeta_max = population.zeta_min, population.zeta_max
        floors = population.price_floors(sigma) * FLOOR_LIFT
        base_price = np.maximum(floors, kappa * zeta_min)

        for budget_slice in (0.4, 0.75, 1.5):
            prices, recruited, finish = solve_round_prices(
                population, sigma, budget_slice
            )
            if not recruited.any():
                continue

            def cost_at(t):
                zeta = np.clip(
                    work / np.maximum(t - comm, 1e-12), zeta_min, zeta_max
                )
                p = np.where(
                    recruited, np.maximum(kappa * zeta, base_price), 0.0
                )
                return _leader_cost(population, p, sigma)

            t_low = float(np.min((work / zeta_max + comm)[recruited]))
            t_high = float(np.max((work / zeta_min + comm)[recruited]))
            grid = np.linspace(t_low, t_high, 20_000)
            feasible = [t for t in grid if cost_at(t) <= budget_slice]
            assert feasible, "slice must afford at least the base prices"
            brute = min(feasible)
            spacing = (t_high - t_low) / 20_000
            assert finish <= brute + spacing
            assert cost_at(finish) <= budget_slice * (1 + 1e-9)

    def test_larger_slice_never_slower(self, zoo_env):
        """More budget buys a (weakly) earlier common finish time."""
        population = zoo_env.population
        sigma = zoo_env.config.local_epochs
        finishes = []
        for budget_slice in (0.5, 1.0, 2.0, 4.0):
            _, recruited, finish = solve_round_prices(
                population, sigma, budget_slice
            )
            if recruited.sum() == population.n_nodes:
                finishes.append(finish)
        assert finishes == sorted(finishes, reverse=True)


class TestMechanism:
    def test_episode_stays_within_budget(self, zoo_env):
        mechanism = StackelbergMechanism(zoo_env)
        state, _ = zoo_env.reset(seed=7)
        obs = Observation(state, zoo_env.ledger.remaining, zoo_env.round_index)
        mechanism.begin_episode(obs)
        while not zoo_env.done:
            prices = mechanism.propose_prices(obs)
            _, _, _, _, info = zoo_env.step(prices)
            result = info["step_result"]
            mechanism.observe(prices, result)
            obs = Observation(
                result.state, result.remaining_budget, result.round_index
            )
        assert zoo_env.ledger.spent <= zoo_env.ledger.total + 1e-9

    def test_pacing_uses_config_horizon(self, zoo_env):
        mechanism = StackelbergMechanism(
            zoo_env, StackelbergConfig(horizon=10)
        )
        state, _ = zoo_env.reset(seed=7)
        obs = Observation(state, zoo_env.ledger.remaining, zoo_env.round_index)
        prices = mechanism.propose_prices(obs)
        budget_slice = per_round_slice(obs.remaining_budget, 0, 10)
        assert _leader_cost(
            zoo_env.population, prices, zoo_env.config.local_epochs
        ) <= budget_slice * (1 + 1e-9)
