"""Ding joint pricing: probability layer bounds, fee/level selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mechanism import Observation
from repro.zoo.ding import (
    DingConfig,
    DingJointPricingMechanism,
    participation_probability,
)

pytestmark = pytest.mark.zoo


class TestParticipationProbability:
    def test_bounded_in_unit_interval(self):
        surplus = np.array([-1e12, -5.0, 0.0, 5.0, 1e12])
        prob = participation_probability(surplus, scale=1.0, smoothing=8.0)
        assert np.all(prob >= 0.0) and np.all(prob <= 1.0)
        assert np.all(np.isfinite(prob))

    def test_half_at_zero_surplus(self):
        assert participation_probability(
            np.array([0.0]), 1.0, 8.0
        )[0] == pytest.approx(0.5)

    def test_monotone_in_surplus(self):
        surplus = np.linspace(-3.0, 3.0, 101)
        prob = participation_probability(surplus, scale=1.0, smoothing=4.0)
        assert np.all(np.diff(prob) > 0.0)

    def test_sharper_smoothing_approaches_threshold(self):
        surplus = np.array([-0.5, 0.5])
        soft = participation_probability(surplus, 1.0, 1.0)
        sharp = participation_probability(surplus, 1.0, 50.0)
        assert sharp[0] < soft[0] and sharp[1] > soft[1]
        assert sharp[0] == pytest.approx(0.0, abs=1e-9)
        assert sharp[1] == pytest.approx(1.0, abs=1e-9)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="scale must be positive"):
            participation_probability(np.zeros(1), 0.0, 1.0)
        with pytest.raises(ValueError, match="smoothing must be positive"):
            participation_probability(np.zeros(1), 1.0, -1.0)


class TestMechanism:
    def test_prices_nonnegative_and_paced(self, zoo_env):
        mechanism = DingJointPricingMechanism(zoo_env)
        state, _ = zoo_env.reset(seed=7)
        obs = Observation(state, zoo_env.ledger.remaining, zoo_env.round_index)
        mechanism.begin_episode(obs)
        prices = mechanism.propose_prices(obs)
        assert np.all(prices >= 0.0)
        budget_slice = obs.remaining_budget / mechanism.config.horizon
        _, spend = mechanism._expected(prices)
        assert spend <= budget_slice * (1 + 1e-9)

    def test_deterministic_without_rng(self, zoo_env):
        a = DingJointPricingMechanism(zoo_env)
        b = DingJointPricingMechanism(zoo_env)
        state, _ = zoo_env.reset(seed=7)
        obs = Observation(state, zoo_env.ledger.remaining, zoo_env.round_index)
        assert np.array_equal(a.propose_prices(obs), b.propose_prices(obs))

    def test_level_for_target_hits_target_when_reachable(self, zoo_env):
        mechanism = DingJointPricingMechanism(zoo_env)
        level = mechanism._level_for_target(0.0)
        rate, _ = mechanism._expected(mechanism._posted_prices(level, 0.0))
        full_rate, _ = mechanism._expected(mechanism._posted_prices(1.0, 0.0))
        if full_rate >= mechanism.config.target_participation:
            assert rate >= mechanism.config.target_participation - 1e-6
            # Cheapest such level: a slightly lower one misses the target.
            if level > 1e-6:
                below, _ = mechanism._expected(
                    mechanism._posted_prices(level - 1e-3, 0.0)
                )
                assert below < rate + 1e-12
        else:
            assert level == 1.0  # best effort under an unreachable target

    def test_level_for_budget_respects_budget(self, zoo_env):
        mechanism = DingJointPricingMechanism(zoo_env)
        for budget in (0.4, 1.0, 3.0):
            level = mechanism._level_for_budget(0.0, 1.0, budget)
            if level < 0.0:
                continue  # floor fleet unaffordable: mechanism posts zeros
            _, spend = mechanism._expected(
                mechanism._posted_prices(level, 0.0)
            )
            assert spend <= budget * (1 + 1e-9)

    def test_rejects_bad_target(self, zoo_env):
        with pytest.raises(ValueError, match="target_participation"):
            DingJointPricingMechanism(
                zoo_env, DingConfig(target_participation=0.0)
            )
