"""BARA: conjugate-posterior sanity, Thompson arms, budget bisection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mechanism import Observation
from repro.zoo.bara import BARAConfig, BARAMechanism, NormalPosterior

pytestmark = pytest.mark.zoo


class TestNormalPosterior:
    def test_variance_strictly_decreases(self):
        post = NormalPosterior(0.0, 1.0, 0.01)
        previous = post.variance
        for _ in range(10):
            post.update(0.05)
            assert post.variance < previous
            previous = post.variance

    def test_mean_between_prior_and_sample_mean(self):
        post = NormalPosterior(prior_mean=0.0, prior_variance=1.0,
                               observation_variance=0.01)
        for _ in range(5):
            post.update(0.2)
        assert 0.0 < post.mean < 0.2

    def test_converges_to_sample_mean(self):
        post = NormalPosterior(prior_mean=-1.0, prior_variance=1.0,
                               observation_variance=0.01)
        for _ in range(10_000):
            post.update(0.3)
        assert post.mean == pytest.approx(0.3, abs=1e-3)
        assert post.variance < 1e-5

    def test_untouched_posterior_is_the_prior(self):
        post = NormalPosterior(prior_mean=0.7, prior_variance=2.0)
        assert post.mean == pytest.approx(0.7)
        assert post.variance == pytest.approx(2.0)

    def test_rejects_nonpositive_variances(self):
        with pytest.raises(ValueError, match="variances must be positive"):
            NormalPosterior(prior_variance=0.0)
        with pytest.raises(ValueError, match="variances must be positive"):
            NormalPosterior(observation_variance=-1.0)

    def test_sample_is_seed_deterministic(self):
        post = NormalPosterior()
        a = post.sample(np.random.default_rng(3))
        b = post.sample(np.random.default_rng(3))
        assert a == b


class TestMechanism:
    def test_observe_updates_only_chosen_arm(self, zoo_env):
        mechanism = BARAMechanism(zoo_env, rng=0)
        state, _ = zoo_env.reset(seed=7)
        obs = Observation(state, zoo_env.ledger.remaining, zoo_env.round_index)
        mechanism.begin_episode(obs)
        prices = mechanism.propose_prices(obs)
        arm = mechanism._arm
        assert arm is not None
        _, _, _, _, info = zoo_env.step(prices)
        mechanism.observe(prices, info["step_result"])
        for index, post in enumerate(mechanism.posteriors):
            assert post.count == (1 if index == arm else 0)

    def test_eval_mode_freezes_posteriors_and_rng(self, zoo_env):
        mechanism = BARAMechanism(zoo_env, rng=0)
        mechanism.eval_mode()
        state, _ = zoo_env.reset(seed=7)
        obs = Observation(state, zoo_env.ledger.remaining, zoo_env.round_index)
        mechanism.begin_episode(obs)
        prices = mechanism.propose_prices(obs)
        _, _, _, _, info = zoo_env.step(prices)
        mechanism.observe(prices, info["step_result"])
        assert all(post.count == 0 for post in mechanism.posteriors)
        # Eval pricing uses posterior means, not Thompson draws: two
        # identical mechanisms stay in lockstep without sharing an RNG.
        other = BARAMechanism(zoo_env, rng=99)
        other.eval_mode()
        assert np.array_equal(prices, other.propose_prices(obs))

    def test_budget_bisection_respects_budget(self, zoo_env):
        mechanism = BARAMechanism(zoo_env, rng=0)
        for budget in (0.0, 0.3, 1.0, 5.0, 1e6):
            prices = mechanism._prices_for_budget(budget)
            assert mechanism._expected_spend(prices) <= budget * (1 + 1e-9)

    def test_end_episode_reports_posterior_state(self, zoo_env):
        mechanism = BARAMechanism(zoo_env, rng=0)
        summary = mechanism.end_episode()
        n_arms = len(mechanism.config.fractions)
        assert set(summary) == {
            f"bara_arm{i}_{field}"
            for i in range(n_arms)
            for field in ("mean", "var")
        }

    def test_rejects_bad_fractions(self, zoo_env):
        with pytest.raises(ValueError, match="fractions"):
            BARAMechanism(zoo_env, BARAConfig(fractions=(0.0, 0.5)), rng=0)
        with pytest.raises(ValueError, match="fractions"):
            BARAMechanism(zoo_env, BARAConfig(fractions=()), rng=0)
