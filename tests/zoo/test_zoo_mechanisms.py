"""Cross-cutting zoo contract: registry, determinism, auditor, obs.

Every zoo mechanism must (1) resolve through the experiments registry the
way hermetic sweep workers resolve it, (2) reproduce an episode bit for
bit under a fixed seed, (3) run clean under the invariant auditor, and
(4) emit its per-mechanism metrics only when observability is enabled —
with the obs-on trace identical to the obs-off one (zero-cost contract).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.builder import BuildConfig
from repro.experiments.mechanisms import (
    available_mechanisms,
    make_mechanism,
    register_mechanism,
)
from repro.testing import invariants
from repro.testing.trace import capture_mechanism, first_divergence
from repro.zoo import ZOO_MECHANISM_NAMES

pytestmark = pytest.mark.zoo

EXPECTED_METRIC = {
    "stackelberg": "zoo.stackelberg.rounds",
    "fmore": "zoo.fmore.auctions",
    "bara": "zoo.bara.rounds",
    "ding": "zoo.ding.rounds",
}


def _fresh_env():
    return BuildConfig(
        n_nodes=5, budget=18.0, seed=321, max_rounds=25
    ).build().env


def _capture(name: str, env=None):
    env = env or _fresh_env()
    mechanism = make_mechanism(name, env, rng=11, tier="quick")
    return capture_mechanism(
        env, mechanism, episode_seed=77, scenario=name, max_rounds=25
    )


class TestRegistry:
    def test_zoo_names_registered(self):
        names = available_mechanisms()
        for name in ZOO_MECHANISM_NAMES:
            assert name in names

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="stackelberg"):
            make_mechanism("no_such_mechanism", _fresh_env())

    def test_duplicate_registration_rejected(self):
        from repro.experiments import mechanisms as registry_mod

        def factory(env, rng, tier):
            return make_mechanism("greedy", env, rng=rng, tier=tier)

        register_mechanism("zoo_test_dup", factory)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_mechanism("zoo_test_dup", factory)
            register_mechanism("zoo_test_dup", factory, overwrite=True)
        finally:
            registry_mod._REGISTRY.pop("zoo_test_dup", None)

    def test_factory_must_be_callable(self):
        with pytest.raises(TypeError, match="callable"):
            register_mechanism("zoo_test_bad", "not-a-factory")


@pytest.mark.parametrize("name", ZOO_MECHANISM_NAMES)
class TestPerMechanismContract:
    def test_deterministic_under_fixed_seed(self, name):
        assert first_divergence(_capture(name), _capture(name)) is None

    def test_auditor_clean(self, name):
        env = invariants.InvariantAuditor(_fresh_env())
        mechanism = make_mechanism(name, env, rng=11, tier="quick")
        with invariants.auditing():
            capture_mechanism(
                env, mechanism, episode_seed=77, scenario=name, max_rounds=25
            )
        assert env.rounds_audited > 0

    def test_obs_metrics_emitted_only_when_enabled(self, name):
        baseline = _capture(name)
        registry = obs.enable()
        try:
            with_obs = _capture(name)
            metric_names = {
                m["name"] for m in registry.snapshot()["metrics"]
            }
        finally:
            obs.disable()
        assert EXPECTED_METRIC[name] in metric_names
        # Zero-cost contract: observability never changes the numbers.
        assert first_divergence(baseline, with_obs) is None
        # And with obs disabled nothing is recorded at all.
        assert not obs.enabled()

    def test_prices_are_finite_nonnegative(self, name):
        trace = _capture(name)
        for round_row in trace.replicas[0]:
            prices = np.asarray(round_row["prices"])
            assert np.all(np.isfinite(prices))
            assert np.all(prices >= 0.0)
