"""Shared fixtures for the mechanism-zoo suite."""

from __future__ import annotations

import pytest

from repro.core.builder import BuildConfig


@pytest.fixture
def zoo_env():
    """The paper's N=5 fleet, fault-free, surrogate accuracy."""
    return BuildConfig(
        n_nodes=5, budget=18.0, seed=321, max_rounds=40
    ).build().env
