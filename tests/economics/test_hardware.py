"""Hardware profiles and population sampling."""

import numpy as np
import pytest

from repro.economics import GHZ, HardwareProfile, HardwareSpec, sample_profiles


class TestHardwareProfile:
    def test_kappa(self, profile):
        sigma = 5
        expected = 2 * sigma * profile.capacitance * profile.cycles_per_bit * profile.bits_per_epoch
        assert profile.kappa(sigma) == pytest.approx(expected)

    def test_kappa_requires_positive_epochs(self, profile):
        with pytest.raises(ValueError):
            profile.kappa(0)

    def test_with_workload(self, profile):
        new = profile.with_workload(1e8)
        assert new.bits_per_epoch == 1e8
        assert profile.bits_per_epoch == 6e7  # original untouched
        assert new.node_id == profile.node_id

    def test_validation(self):
        kwargs = dict(
            node_id=0,
            cycles_per_bit=20.0,
            bits_per_epoch=1e6,
            capacitance=2e-28,
            zeta_min=1e8,
            zeta_max=1e9,
            comm_time=15.0,
            comm_power=0.002,
            reserve_utility=0.01,
        )
        HardwareProfile(**kwargs)  # valid
        with pytest.raises(ValueError):
            HardwareProfile(**{**kwargs, "zeta_min": 2e9})  # min > max
        with pytest.raises(ValueError):
            HardwareProfile(**{**kwargs, "cycles_per_bit": 0.0})
        with pytest.raises(ValueError):
            HardwareProfile(**{**kwargs, "comm_time": -1.0})


class TestHardwareSpec:
    def test_paper_defaults(self):
        spec = HardwareSpec()
        # §VI-A constants.
        assert spec.cycles_per_bit == 20.0
        assert spec.capacitance == 2e-28
        assert spec.zeta_max_low == 1.0 * GHZ
        assert spec.zeta_max_high == 2.0 * GHZ
        assert spec.comm_time_low == 10.0
        assert spec.comm_time_high == 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HardwareSpec(zeta_max_low=3e9)  # low > high
        with pytest.raises(ValueError):
            HardwareSpec(zeta_min_fraction=0.0)
        with pytest.raises(ValueError):
            HardwareSpec(comm_time_low=30.0)


class TestSampling:
    def test_count_and_ids(self):
        profiles = sample_profiles(7, rng=0)
        assert len(profiles) == 7
        assert [p.node_id for p in profiles] == list(range(7))

    def test_ranges(self):
        for p in sample_profiles(50, rng=0):
            assert 1.0 * GHZ <= p.zeta_max <= 2.0 * GHZ
            assert 10.0 <= p.comm_time <= 20.0
            assert p.zeta_min < p.zeta_max

    def test_determinism(self):
        a = sample_profiles(5, rng=9)
        b = sample_profiles(5, rng=9)
        for pa, pb in zip(a, b):
            assert pa == pb

    def test_custom_workloads(self):
        bits = np.array([1e6, 2e6, 3e6])
        profiles = sample_profiles(3, rng=0, bits_per_epoch=bits)
        assert [p.bits_per_epoch for p in profiles] == bits.tolist()

    def test_workload_shape_checked(self):
        with pytest.raises(ValueError):
            sample_profiles(3, rng=0, bits_per_epoch=np.ones(2))

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            sample_profiles(0)
