"""Best responses (Eqns 10-12), participation, and the Lemma-1 oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics import (
    best_response_frequency,
    equal_time_prices,
    min_participation_price,
    node_response,
    node_utility,
    sample_profiles,
)
from repro.economics.pricing import price_for_frequency, price_for_time

SIGMA = 5


class TestBestResponse:
    def test_interior_matches_eqn11(self, profile):
        kappa = profile.kappa(SIGMA)
        price = kappa * 0.5 * (profile.zeta_min + profile.zeta_max)
        assert best_response_frequency(profile, price, SIGMA) == pytest.approx(
            price / kappa
        )

    def test_clips_low(self, profile):
        tiny = profile.kappa(SIGMA) * profile.zeta_min * 0.01
        assert best_response_frequency(profile, tiny, SIGMA) == profile.zeta_min

    def test_clips_high(self, profile):
        huge = profile.kappa(SIGMA) * profile.zeta_max * 100
        assert best_response_frequency(profile, huge, SIGMA) == profile.zeta_max

    def test_zero_price(self, profile):
        assert best_response_frequency(profile, 0.0, SIGMA) == profile.zeta_min

    def test_negative_price_rejected(self, profile):
        with pytest.raises(ValueError):
            best_response_frequency(profile, -1.0, SIGMA)

    @given(
        seed=st.integers(0, 100),
        price_scale=st.floats(0.1, 10.0),
        zeta_frac=st.floats(0.0, 1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimality_property(self, seed, price_scale, zeta_frac):
        """u(ζ*) >= u(ζ) for any feasible ζ — Eqn (11) is the argmax."""
        profile = sample_profiles(1, rng=seed)[0]
        price = price_scale * profile.kappa(SIGMA) * profile.zeta_max
        star = best_response_frequency(profile, price, SIGMA)
        other = profile.zeta_min + zeta_frac * (profile.zeta_max - profile.zeta_min)
        u_star = node_utility(profile, price, star, SIGMA)
        u_other = node_utility(profile, price, other, SIGMA)
        assert u_star >= u_other - 1e-12


class TestParticipation:
    def test_threshold_is_tight(self, profiles):
        for profile in profiles:
            p_min = min_participation_price(profile, SIGMA)
            assert node_response(profile, p_min * 1.001, SIGMA).participates
            assert not node_response(profile, p_min * 0.999, SIGMA).participates

    def test_declining_response_fields(self, profile):
        response = node_response(profile, 0.0, SIGMA)
        assert not response.participates
        assert response.payment == 0.0
        assert response.energy == 0.0
        assert response.time == float("inf")

    def test_participating_fields_consistent(self, profile):
        p_min = min_participation_price(profile, SIGMA)
        r = node_response(profile, 2 * p_min, SIGMA)
        assert r.participates
        assert r.payment == pytest.approx(2 * p_min * r.zeta)
        assert r.utility >= profile.reserve_utility
        assert np.isfinite(r.time) and r.time > profile.comm_time

    def test_higher_price_never_lowers_utility(self, profiles):
        for profile in profiles:
            p_min = min_participation_price(profile, SIGMA)
            utils = [
                node_response(profile, p_min * m, SIGMA).utility
                for m in (1.1, 2.0, 4.0, 8.0)
            ]
            assert all(b >= a - 1e-12 for a, b in zip(utils, utils[1:]))


class TestInversePricing:
    def test_price_for_frequency_roundtrip(self, profile):
        zeta = 0.7 * profile.zeta_max
        price = price_for_frequency(profile, zeta, SIGMA)
        assert best_response_frequency(profile, price, SIGMA) == pytest.approx(zeta)

    def test_price_for_frequency_range_check(self, profile):
        with pytest.raises(ValueError):
            price_for_frequency(profile, profile.zeta_max * 2, SIGMA)

    def test_price_for_time_roundtrip(self, profile):
        from repro.economics import communication_time, computation_time

        target = computation_time(profile, 0.8 * profile.zeta_max, SIGMA) + profile.comm_time
        price = price_for_time(profile, target, SIGMA)
        assert price is not None
        zeta = best_response_frequency(profile, price, SIGMA)
        got = computation_time(profile, zeta, SIGMA) + communication_time(profile)
        assert got == pytest.approx(target, rel=1e-9)

    def test_price_for_time_unreachable(self, profile):
        assert price_for_time(profile, profile.comm_time * 0.5, SIGMA) is None
        assert price_for_time(profile, 1e9, SIGMA) is None  # slower than ζ_min


class TestEqualTimeOracle:
    @pytest.mark.parametrize("scale", [2.0, 4.0, 6.0])
    def test_times_equalized(self, profiles, scale):
        total = scale * sum(min_participation_price(p, SIGMA) for p in profiles)
        prices = equal_time_prices(profiles, total, SIGMA)
        times = [node_response(p, pr, SIGMA).time for p, pr in zip(profiles, prices)]
        assert np.isfinite(times).all()
        spread = (max(times) - min(times)) / max(times)
        assert spread < 0.02

    def test_saturation_beyond_price_caps(self, profiles):
        """Totals above Σκζ_max cannot equalize — every node pins ζ_max."""
        from repro.economics import communication_time, computation_time

        caps = sum(p.kappa(SIGMA) * p.zeta_max for p in profiles)
        prices = equal_time_prices(profiles, 1.5 * caps, SIGMA)
        for p, pr in zip(profiles, prices):
            response = node_response(p, pr, SIGMA)
            assert response.zeta == pytest.approx(p.zeta_max)
            fastest = computation_time(p, p.zeta_max, SIGMA) + communication_time(p)
            assert response.time == pytest.approx(fastest)

    def test_sums_to_total(self, profiles):
        total = 4.0 * sum(min_participation_price(p, SIGMA) for p in profiles)
        prices = equal_time_prices(profiles, total, SIGMA)
        assert prices.sum() == pytest.approx(total)

    def test_lemma1_beats_uniform_split(self, profiles):
        """The equal-time split wastes less idle time than a uniform split."""
        from repro.economics import time_efficiency

        total = 5.0 * sum(min_participation_price(p, SIGMA) for p in profiles)
        oracle_prices = equal_time_prices(profiles, total, SIGMA)
        uniform_prices = np.full(len(profiles), total / len(profiles))

        def efficiency(prices):
            times = [
                node_response(p, pr, SIGMA).time
                for p, pr in zip(profiles, prices)
            ]
            return time_efficiency(times)

        assert efficiency(oracle_prices) >= efficiency(uniform_prices)

    def test_empty_profiles(self):
        with pytest.raises(ValueError):
            equal_time_prices([], 1.0, SIGMA)

    def test_invalid_total(self, profiles):
        with pytest.raises(ValueError):
            equal_time_prices(profiles, 0.0, SIGMA)
