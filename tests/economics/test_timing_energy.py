"""Timing (Eqns 6, 7, 16) and the energy model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.economics import (
    communication_energy,
    communication_time,
    computation_time,
    computing_energy,
    idle_times,
    round_time,
    sample_profiles,
    time_efficiency,
    total_energy,
    total_times,
)


class TestTiming:
    def test_eqn6(self, profile):
        # T_cmp = σ c d / ζ
        sigma, zeta = 5, 1.2e9
        expected = sigma * 20.0 * 6e7 / zeta
        assert computation_time(profile, zeta, sigma) == pytest.approx(expected)

    def test_faster_cpu_shorter_time(self, profile):
        assert computation_time(profile, 2e9, 5) < computation_time(profile, 1e9, 5)

    def test_communication_time(self, profile):
        assert communication_time(profile) == profile.comm_time

    def test_total_times(self, profiles):
        zetas = [p.zeta_max for p in profiles]
        times = total_times(profiles, zetas, 5)
        assert times.shape == (5,)
        assert np.all(times > 0)

    def test_total_times_length_check(self, profiles):
        with pytest.raises(ValueError):
            total_times(profiles, [1e9], 5)

    def test_round_time_is_max(self):
        assert round_time([3.0, 7.0, 5.0]) == 7.0

    def test_round_time_empty(self):
        with pytest.raises(ValueError):
            round_time([])

    def test_idle_times(self):
        np.testing.assert_allclose(idle_times([3.0, 7.0, 5.0]), [4.0, 0.0, 2.0])


class TestTimeEfficiency:
    def test_eqn16_value(self):
        # Σ T_i / (N · T_max)
        assert time_efficiency([10.0, 10.0]) == pytest.approx(1.0)
        assert time_efficiency([5.0, 10.0]) == pytest.approx(0.75)

    def test_requires_positive_makespan(self):
        with pytest.raises(ValueError):
            time_efficiency([0.0, 0.0])

    @given(
        st.lists(st.floats(0.1, 100.0), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, times):
        eff = time_efficiency(times)
        n = len(times)
        assert 1.0 / n - 1e-9 <= eff <= 1.0 + 1e-9

    @given(st.lists(st.floats(0.1, 100.0), min_size=2, max_size=10))
    @settings(max_examples=40, deadline=None)
    def test_equal_times_maximize(self, times):
        equal = [np.mean(times)] * len(times)
        assert time_efficiency(equal) >= time_efficiency(times) - 1e-9


class TestEnergy:
    def test_computing_energy_quadratic(self, profile):
        e1 = computing_energy(profile, 1e9, 5)
        e2 = computing_energy(profile, 2e9, 5)
        assert e2 == pytest.approx(4 * e1)

    def test_kappa_consistency(self, profile):
        # E_cmp == (κ/2) ζ².
        zeta = 1.3e9
        assert computing_energy(profile, zeta, 5) == pytest.approx(
            0.5 * profile.kappa(5) * zeta**2
        )

    def test_communication_energy(self, profile):
        assert communication_energy(profile) == pytest.approx(
            profile.comm_power * profile.comm_time
        )

    def test_total(self, profile):
        assert total_energy(profile, 1e9, 5) == pytest.approx(
            computing_energy(profile, 1e9, 5) + communication_energy(profile)
        )

    def test_validation(self, profile):
        with pytest.raises(ValueError):
            computing_energy(profile, 0.0, 5)
        with pytest.raises(ValueError):
            computation_time(profile, 1e9, 0)
