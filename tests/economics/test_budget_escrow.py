"""BudgetLedger escrow/clawback semantics and close/overdraw edge cases."""

import pytest

from repro.economics import BudgetExhausted, BudgetLedger, EscrowError


class TestChargeEdgeCases:
    def test_overdraw_then_closed(self):
        ledger = BudgetLedger(10.0)
        assert ledger.charge(6.0)
        assert not ledger.charge(5.0)  # overdraw: round discarded
        assert ledger.closed
        assert ledger.spent == 6.0  # the overdraw recorded nothing
        assert ledger.rounds_charged == 1

    def test_charge_after_close_raises(self):
        ledger = BudgetLedger(10.0)
        assert not ledger.charge(11.0)
        with pytest.raises(BudgetExhausted):
            ledger.charge(1.0)

    def test_exact_budget_is_not_overdraw(self):
        ledger = BudgetLedger(10.0)
        assert ledger.charge(10.0)
        assert ledger.remaining == 0.0
        assert not ledger.closed

    def test_reset_reopens(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(11.0)
        ledger.reset()
        assert not ledger.closed
        assert ledger.charge(5.0)


class TestEscrow:
    def test_settle_full_delivery_equals_charge(self):
        ledger = BudgetLedger(10.0)
        assert ledger.escrow(4.0)
        assert ledger.pending_escrow == 4.0
        assert ledger.settle(4.0) == 0.0
        assert ledger.spent == 4.0
        assert ledger.round_payments == [4.0]
        assert ledger.clawback_total == 0.0

    def test_settle_claws_back_undelivered_share(self):
        ledger = BudgetLedger(10.0)
        ledger.escrow(6.0)
        clawback = ledger.settle(2.5)
        assert clawback == pytest.approx(3.5)
        assert ledger.spent == pytest.approx(2.5)
        assert ledger.remaining == pytest.approx(7.5)
        assert ledger.round_payments == [pytest.approx(2.5)]
        assert ledger.clawback_total == pytest.approx(3.5)

    def test_settle_nothing_delivered(self):
        ledger = BudgetLedger(10.0)
        ledger.escrow(6.0)
        assert ledger.settle(0.0) == pytest.approx(6.0)
        assert ledger.spent == 0.0

    def test_clawback_never_pushes_spent_negative(self):
        ledger = BudgetLedger(10.0)
        ledger.escrow(10.0)
        ledger.settle(0.0)
        assert ledger.spent == 0.0
        ledger.escrow(3.0)
        ledger.settle(0.0)
        assert ledger.spent >= 0.0
        assert ledger.remaining <= ledger.total

    def test_escrow_overdraw_closes_like_charge(self):
        ledger = BudgetLedger(10.0)
        assert not ledger.escrow(11.0)
        assert ledger.closed
        assert ledger.pending_escrow is None
        with pytest.raises(EscrowError):
            ledger.settle(0.0)
        with pytest.raises(BudgetExhausted):
            ledger.escrow(1.0)

    def test_unsettled_escrow_blocks_new_charges(self):
        ledger = BudgetLedger(10.0)
        ledger.escrow(2.0)
        with pytest.raises(EscrowError):
            ledger.charge(1.0)
        with pytest.raises(EscrowError):
            ledger.escrow(1.0)
        ledger.settle(2.0)
        assert ledger.charge(1.0)

    def test_settle_without_escrow_raises(self):
        ledger = BudgetLedger(10.0)
        with pytest.raises(EscrowError):
            ledger.settle(0.0)
        ledger.charge(2.0)  # plain charge opens no escrow
        with pytest.raises(EscrowError):
            ledger.settle(2.0)

    def test_settle_more_than_escrowed_raises(self):
        ledger = BudgetLedger(10.0)
        ledger.escrow(2.0)
        with pytest.raises(EscrowError):
            ledger.settle(3.0)

    def test_reset_clears_escrow_state(self):
        ledger = BudgetLedger(10.0)
        ledger.escrow(6.0)
        ledger.settle(1.0)
        ledger.escrow(2.0)
        ledger.reset()
        assert ledger.pending_escrow is None
        assert ledger.clawback_total == 0.0
        assert ledger.spent == 0.0
        assert ledger.charge(5.0)


class TestOverdrawAtomicity:
    def test_refused_escrow_records_no_transient_spend(self):
        # A refused escrow must be atomic: nothing may land on the books,
        # not even transiently, or the auditor's B1 (spent <= eta, Eqn 9)
        # could observe an over-spent ledger between escrow and refusal.
        ledger = BudgetLedger(10.0)
        ledger.escrow(4.0)
        ledger.settle(4.0)
        spent_before = ledger.spent
        payments_before = list(ledger.round_payments)
        assert not ledger.escrow(ledger.remaining + 1e-9)
        assert ledger.spent == spent_before
        assert list(ledger.round_payments) == payments_before
        assert ledger.pending_escrow is None

    def test_refused_charge_records_no_transient_spend(self):
        ledger = BudgetLedger(8.0)
        ledger.charge(3.0)
        spent_before = ledger.spent
        assert not ledger.charge(6.0)
        assert ledger.spent == spent_before
        assert ledger.remaining == 8.0 - 3.0


class TestSettleIdempotence:
    """Journal-replay safety: the same failed delivery settles only once."""

    def test_replayed_settle_does_not_double_refund(self):
        ledger = BudgetLedger(100.0)
        ledger.escrow(30.0)
        clawback = ledger.settle(10.0, delivery_id="round-3")
        assert clawback == pytest.approx(20.0)
        assert ledger.spent == pytest.approx(10.0)
        # Crash-recovery replays the identical settle record: it must be
        # a no-op, not a second 20.0 refund.
        replay = ledger.settle(10.0, delivery_id="round-3")
        assert replay == 0.0
        assert ledger.spent == pytest.approx(10.0)
        assert ledger.clawback_total == pytest.approx(20.0)

    def test_replay_skips_even_with_new_escrow_pending(self):
        ledger = BudgetLedger(100.0)
        ledger.escrow(30.0)
        ledger.settle(10.0, delivery_id="round-1")
        ledger.escrow(40.0)
        # Replay of the old record while a *new* escrow is pending must
        # not consume or corrupt the pending escrow.
        assert ledger.settle(10.0, delivery_id="round-1") == 0.0
        assert ledger.pending_escrow == pytest.approx(40.0)
        clawback = ledger.settle(40.0, delivery_id="round-2")
        assert clawback == 0.0
        assert ledger.spent == pytest.approx(50.0)

    def test_distinct_delivery_ids_settle_independently(self):
        ledger = BudgetLedger(100.0)
        ledger.escrow(20.0)
        assert ledger.settle(0.0, delivery_id="a") == pytest.approx(20.0)
        ledger.escrow(20.0)
        assert ledger.settle(0.0, delivery_id="b") == pytest.approx(20.0)
        assert ledger.clawback_total == pytest.approx(40.0)

    def test_without_delivery_id_behaviour_is_unchanged(self):
        ledger = BudgetLedger(100.0)
        ledger.escrow(30.0)
        ledger.settle(10.0)
        with pytest.raises(EscrowError):
            ledger.settle(10.0)  # no pending escrow, no id to dedupe on

    def test_reset_forgets_settled_ids(self):
        ledger = BudgetLedger(100.0)
        ledger.escrow(30.0)
        ledger.settle(10.0, delivery_id="round-1")
        ledger.reset()
        ledger.escrow(30.0)
        # Same id in a new episode is a fresh settle, not a replay.
        assert ledger.settle(10.0, delivery_id="round-1") == pytest.approx(20.0)
