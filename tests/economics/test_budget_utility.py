"""Budget ledger semantics and server utility (Eqn 9)."""

import numpy as np
import pytest

from repro.economics import (
    BudgetExhausted,
    BudgetLedger,
    node_utility,
    server_round_utility,
    server_utility,
)


class TestBudgetLedger:
    def test_basic_accounting(self):
        ledger = BudgetLedger(10.0)
        assert ledger.charge(3.0)
        assert ledger.charge(4.0)
        assert ledger.spent == pytest.approx(7.0)
        assert ledger.remaining == pytest.approx(3.0)
        assert ledger.rounds_charged == 2
        assert ledger.round_payments == [3.0, 4.0]

    def test_overdraw_discards_and_closes(self):
        ledger = BudgetLedger(10.0)
        ledger.charge(8.0)
        assert not ledger.charge(5.0)  # overdraw: round discarded
        assert ledger.spent == pytest.approx(8.0)  # nothing recorded
        assert ledger.closed

    def test_charge_after_close_raises(self):
        ledger = BudgetLedger(1.0)
        ledger.charge(2.0)  # closes
        with pytest.raises(BudgetExhausted):
            ledger.charge(0.1)

    def test_exact_spend_allowed(self):
        ledger = BudgetLedger(5.0)
        assert ledger.charge(5.0)
        assert ledger.remaining == pytest.approx(0.0)
        assert not ledger.closed

    def test_can_afford(self):
        ledger = BudgetLedger(5.0)
        assert ledger.can_afford(5.0)
        assert not ledger.can_afford(5.1)

    def test_reset(self):
        ledger = BudgetLedger(5.0)
        ledger.charge(10.0)
        ledger.reset()
        assert not ledger.closed
        assert ledger.remaining == 5.0
        assert ledger.rounds_charged == 0

    def test_negative_charge_rejected(self):
        with pytest.raises(ValueError):
            BudgetLedger(5.0).charge(-1.0)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            BudgetLedger(0.0)


class TestServerUtility:
    def test_eqn9(self):
        # u = λ A − Σ T
        assert server_utility(0.9, [10.0, 20.0], lam=100.0) == pytest.approx(
            100 * 0.9 - 30.0
        )

    def test_round_slice_telescopes(self):
        # Summing per-round slices equals λ(A_K − A_0) − ΣT.
        accs = [0.1, 0.5, 0.7, 0.8]
        times = [10.0, 12.0, 9.0]
        total = sum(
            server_round_utility(accs[i + 1] - accs[i], times[i], lam=50.0)
            for i in range(3)
        )
        expected = 50.0 * (accs[-1] - accs[0]) - sum(times)
        assert total == pytest.approx(expected)


class TestNodeUtility:
    def test_eqn8(self, profile):
        from repro.economics import total_energy

        price, zeta = 1e-9, 1.2e9
        expected = price * zeta - total_energy(profile, zeta, 5)
        assert node_utility(profile, price, zeta, 5) == pytest.approx(expected)

    def test_rejects_negative_price(self, profile):
        with pytest.raises(ValueError):
            node_utility(profile, -1.0, 1e9, 5)
