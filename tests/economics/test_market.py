"""Market-analysis tools."""

import numpy as np
import pytest

from repro.economics import (
    feasible_rounds,
    fleet_cost_bounds,
    min_participation_price,
    participation_curve,
    participation_fraction,
    quote_curve,
    quote_round,
    welfare,
)

SIGMA = 5


class TestParticipation:
    def test_zero_price_nobody(self, profiles):
        assert participation_fraction(profiles, 1e-15, SIGMA) == 0.0

    def test_high_price_everybody(self, profiles):
        rich = 10 * max(min_participation_price(p, SIGMA) for p in profiles)
        assert participation_fraction(profiles, rich, SIGMA) == 1.0

    def test_curve_monotone(self, profiles):
        prices = np.linspace(1e-12, 2e-9, 30)
        curve = participation_curve(profiles, prices, SIGMA)
        assert np.all(np.diff(curve) >= 0)
        assert curve[0] == 0.0 and curve[-1] == 1.0


class TestQuotes:
    def total_for(self, profiles, scale):
        return scale * sum(min_participation_price(p, SIGMA) for p in profiles)

    def test_quote_fields(self, profiles):
        quote = quote_round(profiles, self.total_for(profiles, 3), SIGMA)
        assert quote.participants == len(profiles)
        assert quote.payment > 0
        assert quote.makespan > 0
        assert 0 < quote.time_efficiency <= 1
        assert quote.node_surplus >= 0

    def test_equal_time_beats_uniform_efficiency(self, profiles):
        total = self.total_for(profiles, 4)
        eq = quote_round(profiles, total, SIGMA, allocation="equal_time")
        un = quote_round(profiles, total, SIGMA, allocation="uniform")
        assert eq.time_efficiency >= un.time_efficiency

    def test_more_money_faster_rounds(self, profiles):
        cheap = quote_round(profiles, self.total_for(profiles, 2), SIGMA)
        dear = quote_round(profiles, self.total_for(profiles, 6), SIGMA)
        assert dear.makespan < cheap.makespan
        assert dear.payment > cheap.payment

    def test_tiny_price_empty_quote(self, profiles):
        quote = quote_round(profiles, 1e-15, SIGMA)
        assert quote.participants == 0
        assert quote.payment == 0.0

    def test_quote_curve_length(self, profiles):
        totals = [self.total_for(profiles, s) for s in (2, 3, 4)]
        quotes = quote_curve(profiles, totals, SIGMA)
        assert len(quotes) == 3

    def test_unknown_allocation(self, profiles):
        with pytest.raises(ValueError, match="unknown allocation"):
            quote_round(profiles, 1e-9, SIGMA, allocation="greedy")


class TestFeasibleRounds:
    def test_budget_scaling(self, profiles):
        total = 3 * sum(min_participation_price(p, SIGMA) for p in profiles)
        few = feasible_rounds(profiles, budget=10.0, total_price=total, local_epochs=SIGMA)
        many = feasible_rounds(profiles, budget=100.0, total_price=total, local_epochs=SIGMA)
        assert many >= 10 * few - 1
        assert few >= 1

    def test_zero_payment_zero_rounds(self, profiles):
        assert feasible_rounds(profiles, 10.0, 1e-15, SIGMA) == 0


class TestFleetBounds:
    def test_floor_below_cap(self, profiles):
        floor, cap = fleet_cost_bounds(profiles, SIGMA)
        assert 0 < floor < cap

    def test_cap_is_max_speed_payment(self, profiles):
        _, cap = fleet_cost_bounds(profiles, SIGMA)
        expected = sum(p.kappa(SIGMA) * p.zeta_max**2 for p in profiles)
        assert cap == pytest.approx(expected)


class TestWelfare:
    def test_sum(self):
        assert welfare(10.0, 2.5) == 12.5
