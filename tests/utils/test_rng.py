"""Seeded randomness utilities."""

import numpy as np
import pytest

from repro.utils.rng import (
    SeedSequenceFactory,
    as_generator,
    choice_without_replacement,
    spawn_generators,
)


class TestAsGenerator:
    def test_from_int(self):
        a, b = as_generator(5), as_generator(5)
        assert a.uniform() == b.uniform()

    def test_from_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        a = as_generator(seq)
        b = as_generator(np.random.SeedSequence(7))
        assert a.uniform() == b.uniform()

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_generator("seed")


class TestSpawn:
    def test_children_differ(self):
        children = spawn_generators(0, 3)
        values = [g.uniform() for g in children]
        assert len(set(values)) == 3

    def test_deterministic(self):
        a = [g.uniform() for g in spawn_generators(4, 3)]
        b = [g.uniform() for g in spawn_generators(4, 3)]
        assert a == b

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_from_generator(self):
        gen = np.random.default_rng(0)
        children = spawn_generators(gen, 2)
        assert len(children) == 2


class TestSeedSequenceFactory:
    def test_named_streams_stable(self):
        f = SeedSequenceFactory(42)
        a = f.generator("data").uniform(size=3)
        b = f.generator("data").uniform(size=3)
        np.testing.assert_allclose(a, b)

    def test_order_independent(self):
        f1 = SeedSequenceFactory(42)
        _ = f1.generator("first").uniform()
        late = f1.generator("second").uniform()
        f2 = SeedSequenceFactory(42)
        early = f2.generator("second").uniform()
        assert late == early

    def test_names_independent(self):
        f = SeedSequenceFactory(42)
        assert f.generator("a").uniform() != f.generator("b").uniform()

    def test_seeds_differ(self):
        a = SeedSequenceFactory(1).generator("x").uniform()
        b = SeedSequenceFactory(2).generator("x").uniform()
        assert a != b

    def test_child_namespacing(self):
        f = SeedSequenceFactory(0)
        child = f.child("nodes")
        v1 = child.generator("n0").uniform()
        v2 = SeedSequenceFactory(0).child("nodes").generator("n0").uniform()
        assert v1 == v2

    def test_integers(self):
        f = SeedSequenceFactory(3)
        seeds = f.integers("stream", 5)
        assert len(seeds) == 5
        assert seeds == f.integers("stream", 5)

    def test_seed_property(self):
        assert SeedSequenceFactory(9).seed == 9
        assert SeedSequenceFactory(None).seed is None


class TestChoice:
    def test_distinct(self):
        got = choice_without_replacement(np.random.default_rng(0), range(10), 5)
        assert len(set(got)) == 5

    def test_too_many(self):
        with pytest.raises(ValueError):
            choice_without_replacement(np.random.default_rng(0), range(3), 5)
