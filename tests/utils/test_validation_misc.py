"""Validation helpers, serialization, logging, moving statistics."""

import json
import logging

import numpy as np
import pytest

from repro.utils import (
    ExponentialMovingAverage,
    MovingWindow,
    check_finite,
    check_in_range,
    check_positive,
    check_probability_vector,
    check_shape,
    from_json_file,
    get_logger,
    to_json_file,
)
from repro.utils.serialization import to_json_string


class TestValidation:
    def test_check_positive(self):
        check_positive("x", 1.0)
        check_positive("x", 0.0, strict=False)
        with pytest.raises(ValueError, match="x must be > 0"):
            check_positive("x", 0.0)
        with pytest.raises(ValueError):
            check_positive("x", -1.0, strict=False)

    def test_check_in_range(self):
        check_in_range("x", 0.5, 0.0, 1.0)
        check_in_range("x", 0.0, 0.0, 1.0)
        with pytest.raises(ValueError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=(False, True))
        with pytest.raises(ValueError, match=r"\(0.0, 1.0\]"):
            check_in_range("x", 2.0, 0.0, 1.0, inclusive=(False, True))

    def test_check_finite(self):
        check_finite("x", np.ones(3))
        with pytest.raises(ValueError, match="non-finite"):
            check_finite("x", np.array([1.0, np.nan]))
        with pytest.raises(ValueError):
            check_finite("x", np.array([np.inf]))

    def test_check_shape(self):
        check_shape("x", np.zeros((2, 3)), (2, 3))
        check_shape("x", np.zeros((2, 3)), (-1, 3))
        with pytest.raises(ValueError, match="dims"):
            check_shape("x", np.zeros((2, 3)), (2, 3, 1))
        with pytest.raises(ValueError, match="axis 1"):
            check_shape("x", np.zeros((2, 3)), (2, 4))

    def test_check_probability_vector(self):
        check_probability_vector("p", np.array([0.25, 0.75]))
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector("p", np.array([0.5, 0.4]))
        with pytest.raises(ValueError, match="negative"):
            check_probability_vector("p", np.array([-0.5, 1.5]))
        with pytest.raises(ValueError, match="1-D"):
            check_probability_vector("p", np.ones((2, 2)) / 4)


class TestSerialization:
    def test_numpy_types(self, tmp_path):
        payload = {
            "int": np.int64(3),
            "float": np.float32(0.5),
            "bool": np.bool_(True),
            "array": np.arange(3),
        }
        path = to_json_file(payload, tmp_path / "out.json")
        loaded = from_json_file(path)
        assert loaded == {"int": 3, "float": 0.5, "bool": True, "array": [0, 1, 2]}

    def test_dataclass(self):
        from dataclasses import dataclass

        @dataclass
        class Point:
            x: int
            y: int

        assert json.loads(to_json_string(Point(1, 2))) == {"x": 1, "y": 2}

    def test_creates_parent_dirs(self, tmp_path):
        path = to_json_file({"a": 1}, tmp_path / "deep" / "nested" / "f.json")
        assert path.exists()

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_json_string(object())


class TestLogging:
    def test_namespacing(self):
        assert get_logger("rl.ppo").name == "repro.rl.ppo"
        assert get_logger("repro.core").name == "repro.core"
        assert get_logger().name == "repro"

    def test_hierarchy(self):
        child = get_logger("economics")
        assert child.parent.name == "repro"


class TestMovingWindow:
    def test_mean_and_sum(self):
        window = MovingWindow(3)
        for v in (1.0, 2.0, 3.0):
            window.push(v)
        assert window.mean() == pytest.approx(2.0)
        assert window.sum() == pytest.approx(6.0)
        assert window.full

    def test_eviction(self):
        window = MovingWindow(2)
        for v in (1.0, 2.0, 10.0):
            window.push(v)
        assert window.mean() == pytest.approx(6.0)
        assert len(window) == 2

    def test_empty(self):
        window = MovingWindow(4)
        assert window.mean() == 0.0
        assert window.std() == 0.0
        assert not window.full

    def test_std_matches_numpy(self, rng):
        window = MovingWindow(10)
        values = rng.normal(size=10)
        for v in values:
            window.push(v)
        assert window.std() == pytest.approx(np.std(values))

    def test_values_order(self):
        window = MovingWindow(3)
        for v in (1.0, 2.0, 3.0, 4.0):
            window.push(v)
        assert window.values() == [2.0, 3.0, 4.0]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            MovingWindow(0)


class TestEMA:
    def test_bias_corrected_first_value(self):
        ema = ExponentialMovingAverage(0.1)
        assert ema.push(10.0) == pytest.approx(10.0)

    def test_converges_to_constant(self):
        ema = ExponentialMovingAverage(0.3)
        for _ in range(100):
            ema.push(5.0)
        assert ema.value == pytest.approx(5.0)

    def test_uncorrected_starts_at_first(self):
        ema = ExponentialMovingAverage(0.1, bias_correction=False)
        ema.push(10.0)
        assert ema.value == pytest.approx(10.0)

    def test_empty_value(self):
        assert ExponentialMovingAverage(0.5).value == 0.0

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            ExponentialMovingAverage(0.0)
        with pytest.raises(ValueError):
            ExponentialMovingAverage(1.5)
