"""Shared nonlinearities in repro.utils.numerics (hoisted in the redesign)."""

import numpy as np

from repro.utils.numerics import sigmoid, softmax


class TestSigmoid:
    def test_scalar_returns_float(self):
        out = sigmoid(0.0)
        assert isinstance(out, float)
        assert out == 0.5

    def test_matches_naive_form_in_safe_range(self):
        x = np.linspace(-20, 20, 101)
        np.testing.assert_allclose(sigmoid(x), 1.0 / (1.0 + np.exp(-x)))

    def test_overflow_guarded(self):
        assert sigmoid(1000.0) == 1.0
        assert sigmoid(-1000.0) == 0.0
        out = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        assert np.all(np.isfinite(out))
        np.testing.assert_array_equal(out, [0.0, 0.5, 1.0])

    def test_scalar_and_array_paths_agree(self):
        xs = np.array([-5.0, -0.5, 0.0, 0.5, 5.0])
        arr = sigmoid(xs)
        for x, expected in zip(xs, arr):
            assert sigmoid(float(x)) == expected

    def test_symmetry(self):
        x = np.linspace(-8, 8, 33)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), np.ones_like(x))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 6))
        out = softmax(x)
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(4))
        assert np.all(out > 0)

    def test_matches_classic_form_1d(self):
        x = np.array([0.3, -1.2, 2.0, 0.0])
        e = np.exp(x - x.max())
        np.testing.assert_array_equal(softmax(x), e / e.sum())

    def test_batched_rows_equal_per_row(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        batched = softmax(x)
        for i in range(3):
            np.testing.assert_array_equal(batched[i], softmax(x[i]))

    def test_shift_invariance(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))

    def test_large_inputs_stable(self):
        out = softmax(np.array([1e4, 1e4 + 1.0]))
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(), 1.0)

    def test_simplex_drift_within_auditor_tolerance(self):
        # The invariant auditor (repro.testing.invariants, S1) asserts that
        # price allocations produced via softmax sum to 1 within
        # SIMPLEX_ATOL.  Pin that guarantee here over a wide randomized
        # sweep of logit scales so a future softmax rewrite that loosens
        # the normalization fails loudly.
        from repro.testing.invariants import SIMPLEX_ATOL

        rng = np.random.default_rng(2024)
        worst = 0.0
        for _ in range(500):
            dim = int(rng.integers(2, 12))
            scale = float(rng.uniform(0.1, 50.0))
            logits = rng.normal(scale=scale, size=dim)
            drift = abs(float(softmax(logits).sum()) - 1.0)
            worst = max(worst, drift)
        assert worst <= SIMPLEX_ATOL
