"""Training checkpoints: atomic store semantics + bitwise resume."""

from __future__ import annotations

import json
import signal

import numpy as np
import pytest

from repro.core.builder import build_environment
from repro.experiments.mechanisms import make_mechanism
from repro.experiments.results import EpisodeResult, TrainingHistory
from repro.experiments.runner import train_mechanism
from repro.resilience.signals import ShutdownGuard
from repro.resilience.training import (
    latest_checkpoint,
    list_checkpoints,
    load_training_checkpoint,
    prune_checkpoints,
    save_training_checkpoint,
)

pytestmark = pytest.mark.resilience


class DummyMechanism:
    """Minimal save/load surface for exercising the checkpoint store."""

    name = "dummy"

    def __init__(self):
        self.weights = [1.0, 2.0]
        self.loaded_from = None

    def save(self, path):
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.weights, handle)

    def load(self, path):
        with open(path, "r", encoding="utf-8") as handle:
            self.weights = json.load(handle)
        self.loaded_from = str(path)


class DummyEnv:
    def __init__(self):
        self.restored = None

    def rng_checkpoint(self):
        return {"seed_base": 7, "episode": 3}

    def restore_rng_checkpoint(self, state):
        self.restored = state


def history_with(n):
    history = TrainingHistory(mechanism="dummy")
    for i in range(n):
        history.append(
            EpisodeResult(
                rounds=5,
                final_accuracy=0.5 + 0.01 * i,
                mean_time_efficiency=0.8,
                total_learning_time=10.0,
                budget_spent=1.0,
                reward_exterior=float(i),
                reward_inner=-1.0,
            ),
            {"step": i},
        )
    return history


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        mechanism, env = DummyMechanism(), DummyEnv()
        mechanism.weights = [3.5, -1.25]
        path = save_training_checkpoint(
            tmp_path, mechanism, env, history_with(4), episodes_done=4
        )
        assert path.name == "ep00000004"

        fresh_mechanism, fresh_env = DummyMechanism(), DummyEnv()
        episodes_done, history = load_training_checkpoint(
            path, fresh_mechanism, fresh_env
        )
        assert episodes_done == 4
        assert fresh_mechanism.weights == [3.5, -1.25]
        assert fresh_env.restored == {"seed_base": 7, "episode": 3}
        assert len(history) == 4
        assert history.episodes[2].reward_exterior == 2.0
        assert history.diagnostics[2] == {"step": 2}

    def test_latest_follows_pointer_and_survives_missing_pointer(
        self, tmp_path
    ):
        mechanism, env = DummyMechanism(), DummyEnv()
        for n in (2, 4, 6):
            save_training_checkpoint(
                tmp_path, mechanism, env, history_with(n), episodes_done=n
            )
        assert latest_checkpoint(tmp_path).name == "ep00000006"
        # A crash after the rename but before the pointer moved: the
        # fallback scan must still find the newest complete directory.
        (tmp_path / "LATEST").unlink()
        assert latest_checkpoint(tmp_path).name == "ep00000006"
        assert latest_checkpoint(tmp_path / "absent") is None

    def test_incomplete_tmp_dir_is_invisible(self, tmp_path):
        mechanism, env = DummyMechanism(), DummyEnv()
        save_training_checkpoint(
            tmp_path, mechanism, env, history_with(2), episodes_done=2
        )
        # A half-written checkpoint (crash mid-save) must never be listed.
        (tmp_path / ".tmp-ep00000004").mkdir()
        (tmp_path / "ep00000006").mkdir()  # renamed dir missing state.json
        names = [p.name for p in list_checkpoints(tmp_path)]
        assert names == ["ep00000002"]
        assert latest_checkpoint(tmp_path).name == "ep00000002"

    def test_prune_keeps_newest(self, tmp_path):
        mechanism, env = DummyMechanism(), DummyEnv()
        for n in (1, 2, 3, 4):
            save_training_checkpoint(
                tmp_path, mechanism, env, history_with(n), episodes_done=n
            )
        removed = prune_checkpoints(tmp_path, keep=2)
        assert [p.name for p in removed] == ["ep00000001", "ep00000002"]
        names = [p.name for p in list_checkpoints(tmp_path)]
        assert names == ["ep00000003", "ep00000004"]
        with pytest.raises(ValueError):
            prune_checkpoints(tmp_path, keep=0)

    def test_mechanism_mismatch_refused(self, tmp_path):
        mechanism, env = DummyMechanism(), DummyEnv()
        path = save_training_checkpoint(
            tmp_path, mechanism, env, history_with(1), episodes_done=1
        )
        class Other(DummyMechanism):
            name = "other"
        with pytest.raises(ValueError, match="written by mechanism"):
            load_training_checkpoint(path, Other(), DummyEnv())


class TestTrainMechanismValidation:
    def _env_mech(self, seed=0):
        built = build_environment(
            task_name="mnist",
            n_nodes=3,
            seed=seed,
            accuracy_mode="surrogate",
            max_rounds=8,
        )
        env = built.env if hasattr(built, "env") else built
        mechanism = make_mechanism(
            "chiron", env, rng=np.random.default_rng(seed), tier="quick"
        )
        return env, mechanism

    def test_checkpoint_params_must_come_together(self, tmp_path):
        env, mechanism = self._env_mech()
        with pytest.raises(ValueError, match="set together"):
            train_mechanism(env, mechanism, episodes=1, checkpoint_every=1)
        with pytest.raises(ValueError, match="set together"):
            train_mechanism(
                env, mechanism, episodes=1, checkpoint_dir=str(tmp_path)
            )

    def test_vectorized_path_rejected(self, tmp_path):
        env, mechanism = self._env_mech()
        with pytest.raises(ValueError, match="sequential path"):
            train_mechanism(
                env,
                mechanism,
                episodes=1,
                num_envs=2,
                checkpoint_every=1,
                checkpoint_dir=str(tmp_path),
            )

    def test_mechanism_without_save_rejected(self, tmp_path):
        built = build_environment(
            task_name="mnist",
            n_nodes=3,
            seed=0,
            accuracy_mode="surrogate",
            max_rounds=8,
        )
        env = built.env if hasattr(built, "env") else built
        greedy = make_mechanism(
            "greedy", env, rng=np.random.default_rng(0), tier="quick"
        )
        with pytest.raises(TypeError, match="no save/load"):
            train_mechanism(
                env,
                greedy,
                episodes=1,
                checkpoint_every=1,
                checkpoint_dir=str(tmp_path),
            )


class TestBitwiseResume:
    """The headline guarantee: kill -9 + resume == never killed."""

    def _env_mech(self, seed=0):
        built = build_environment(
            task_name="mnist",
            n_nodes=3,
            seed=seed,
            accuracy_mode="surrogate",
            max_rounds=8,
        )
        env = built.env if hasattr(built, "env") else built
        mechanism = make_mechanism(
            "chiron", env, rng=np.random.default_rng(seed), tier="quick"
        )
        return env, mechanism

    def test_resume_is_bitwise_identical(self, tmp_path):
        import dataclasses

        env, mechanism = self._env_mech()
        golden = train_mechanism(env, mechanism, episodes=3)

        env1, mech1 = self._env_mech()
        train_mechanism(
            env1,
            mech1,
            episodes=2,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        )
        # Fresh objects stand in for the post-kill process.
        env2, mech2 = self._env_mech()
        resumed = train_mechanism(
            env2,
            mech2,
            episodes=3,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        )
        golden_rows = [dataclasses.asdict(e) for e in golden.episodes]
        resumed_rows = [dataclasses.asdict(e) for e in resumed.episodes]
        assert resumed_rows == golden_rows

    def test_resume_past_target_returns_immediately(self, tmp_path):
        env, mechanism = self._env_mech()
        train_mechanism(
            env,
            mechanism,
            episodes=2,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        )
        env2, mech2 = self._env_mech()
        history = train_mechanism(
            env2,
            mech2,
            episodes=2,
            checkpoint_every=1,
            checkpoint_dir=str(tmp_path),
        )
        assert len(history) == 2

    def test_guard_drain_checkpoints_partial_run(self, tmp_path):
        env, mechanism = self._env_mech()
        guard = ShutdownGuard()

        original_step = env.step
        calls = {"n": 0}

        def stepping(*args, **kwargs):
            calls["n"] += 1
            # Arm the drain mid-episode: the episode must still finish
            # (cooperative boundaries only) and then checkpoint.
            if calls["n"] == 3:
                guard.request(signal.SIGTERM)
            return original_step(*args, **kwargs)

        env.step = stepping
        history = train_mechanism(
            env,
            mechanism,
            episodes=5,
            checkpoint_every=10,  # never reached; drain writes the final one
            checkpoint_dir=str(tmp_path),
            guard=guard,
        )
        assert len(history) == 1  # drained at the first episode boundary
        newest = latest_checkpoint(tmp_path)
        assert newest is not None and newest.name == "ep00000001"
