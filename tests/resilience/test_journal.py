"""Durable run journal: digests, torn tails, corruption, reopen semantics."""

from __future__ import annotations

import json

import pytest

from repro.resilience.journal import (
    JournalCorrupt,
    RunJournal,
    read_journal,
    record_digest,
)

pytestmark = pytest.mark.resilience


class TestAppendRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.append("header", {"n": 3})
            journal.append("item", {"index": 0, "result": [1.0, 2.0]})
            journal.append("item", {"index": 1, "result": None})
        report = read_journal(path)
        assert report.clean
        assert [r.kind for r in report.records] == ["header", "item", "item"]
        assert [r.seq for r in report.records] == [0, 1, 2]
        assert report.records[1].data == {"index": 0, "result": [1.0, 2.0]}

    def test_of_kind_filters(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.append("a", {})
            journal.append("b", {"x": 1})
            journal.append("a", {})
        report = read_journal(path)
        assert len(report.of_kind("a")) == 2
        assert report.of_kind("b")[0].data == {"x": 1}

    def test_json_round_trip_preserves_floats_exactly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        value = 0.1 + 0.2  # not representable; repr round-trips bit-exactly
        with RunJournal(path) as journal:
            journal.append("item", {"v": value})
        back = read_journal(path).records[0].data["v"]
        assert back == value

    def test_each_line_carries_verified_digest(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.append("item", {"k": "v"})
        row = json.loads(path.read_text().splitlines()[0])
        digest = row.pop("sha256")
        assert digest == record_digest(row)

    def test_reads_missing_file_as_empty(self, tmp_path):
        report = read_journal(tmp_path / "absent.jsonl")
        assert report.clean
        assert report.records == []


class TestCrashTolerance:
    def _write_three(self, path):
        with RunJournal(path) as journal:
            for i in range(3):
                journal.append("item", {"index": i})

    def test_torn_trailing_line_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write_three(path)
        with open(path, "ab") as handle:
            handle.write(b'{"seq": 3, "kind": "item", "da')
        report = read_journal(path)
        assert not report.clean
        assert report.torn_tail
        assert len(report.records) == 3

    def test_reopen_truncates_torn_tail_and_continues_seq(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write_three(path)
        with open(path, "ab") as handle:
            handle.write(b'{"torn')
        with RunJournal(path) as journal:
            assert journal.next_seq == 3
            journal.append("item", {"index": 3})
        report = read_journal(path)
        assert report.clean
        assert [r.seq for r in report.records] == [0, 1, 2, 3]

    def test_mid_file_damage_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write_three(path)
        lines = path.read_bytes().splitlines(keepends=True)
        lines[1] = lines[1].replace(b'"index"', b'"inXex"', 1)
        path.write_bytes(b"".join(lines))
        with pytest.raises(JournalCorrupt):
            read_journal(path)

    def test_tampered_payload_fails_digest_check(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write_three(path)
        lines = path.read_text().splitlines()
        row = json.loads(lines[1])
        row["data"]["index"] = 99  # edit without recomputing the digest
        lines[1] = json.dumps(row, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorrupt):
            read_journal(path)

    def test_seq_gap_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            for i in range(4):
                journal.append("item", {"index": i})
        lines = path.read_text().splitlines()
        # Drop record 1: the gap lands mid-file (record 3 is still last).
        path.write_text("\n".join([lines[0], lines[2], lines[3]]) + "\n")
        with pytest.raises(JournalCorrupt):
            read_journal(path)


class TestFsyncBatching:
    def test_sync_and_batched_fsync_both_land_on_disk(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = RunJournal(path, fsync_every=2)
        journal.append("item", {"i": 0})
        journal.append("item", {"i": 1})  # hits the fsync boundary
        journal.append("item", {"i": 2})
        journal.sync()
        assert len(read_journal(path).records) == 3
        journal.close()

    def test_append_after_close_rejected(self, tmp_path):
        journal = RunJournal(tmp_path / "j.jsonl")
        journal.close()
        with pytest.raises(ValueError):
            journal.append("item", {})
