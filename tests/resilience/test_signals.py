"""ShutdownGuard: flag semantics, handler install/restore, escalation."""

from __future__ import annotations

import signal
import threading

import pytest

from repro.resilience.signals import ShutdownGuard, ShutdownRequested

pytestmark = pytest.mark.resilience


class TestFlag:
    def test_fresh_guard_is_not_draining(self):
        assert not ShutdownGuard().draining

    def test_request_arms_flag_and_records_signal(self):
        guard = ShutdownGuard()
        guard.request(signal.SIGINT)
        assert guard.draining
        assert guard.signum == signal.SIGINT

    def test_second_request_keeps_first_signum(self):
        guard = ShutdownGuard()
        guard.request(signal.SIGTERM)
        guard.request(signal.SIGINT)
        assert guard.signum == signal.SIGTERM

    def test_raise_if_draining(self):
        guard = ShutdownGuard()
        guard.raise_if_draining()  # no-op while idle
        guard.request(signal.SIGTERM)
        with pytest.raises(ShutdownRequested) as excinfo:
            guard.raise_if_draining()
        assert excinfo.value.signum == signal.SIGTERM


class TestHandlerLifecycle:
    def test_handlers_installed_and_restored(self):
        before = signal.getsignal(signal.SIGTERM)
        with ShutdownGuard() as guard:
            assert signal.getsignal(signal.SIGTERM) == guard._handle
            assert signal.getsignal(signal.SIGINT) == guard._handle
        assert signal.getsignal(signal.SIGTERM) == before

    def test_real_sigterm_arms_flag_without_killing_process(self):
        with ShutdownGuard() as guard:
            signal.raise_signal(signal.SIGTERM)
            assert guard.draining
            assert guard.signum == signal.SIGTERM

    def test_nested_guards_restore_in_order(self):
        before = signal.getsignal(signal.SIGTERM)
        with ShutdownGuard() as outer:
            with ShutdownGuard() as inner:
                assert signal.getsignal(signal.SIGTERM) == inner._handle
            assert signal.getsignal(signal.SIGTERM) == outer._handle
        assert signal.getsignal(signal.SIGTERM) == before

    def test_non_main_thread_degrades_to_plain_flag(self):
        captured = {}

        def body():
            with ShutdownGuard() as guard:
                captured["installed"] = guard._installed
                captured["draining"] = guard.draining

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert captured == {"installed": False, "draining": False}
