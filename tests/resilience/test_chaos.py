"""Chaos harness: deterministic mixtures, accounting audit, kill/resume."""

from __future__ import annotations

import pytest

from repro.resilience.chaos import (
    EXPECTED_OUTCOME,
    TRAIN_DRILL,
    ChaosConfig,
    chaos_items,
    kill_resume_grid,
    kill_resume_training_setup,
    run_chaos,
    run_kill_resume,
    run_kill_resume_training,
)

pytestmark = pytest.mark.resilience

SMALL = ChaosConfig(
    n_echo=3,
    n_flaky=1,
    n_fail=1,
    n_crash=1,
    n_hang=1,
    n_unpicklable=1,
    # Bounds execution only: the pool's start ack excludes worker cold
    # start from the clock, so a loaded host can't fail healthy items.
    item_timeout=2.0,
)


class TestChaosItems:
    def test_mixture_is_deterministic_in_seed(self, tmp_path):
        a = chaos_items(SMALL, scratch_dir=str(tmp_path / "a"))
        b = chaos_items(SMALL, scratch_dir=str(tmp_path / "b"))
        assert [i["kind"] for i in a] == [i["kind"] for i in b]

    def test_different_seed_different_order(self, tmp_path):
        a = chaos_items(SMALL, scratch_dir=str(tmp_path / "a"))
        config = ChaosConfig(
            **{**SMALL.__dict__, "seed": 1}
        )
        b = chaos_items(config, scratch_dir=str(tmp_path / "b"))
        assert [i["kind"] for i in a] != [i["kind"] for i in b]

    def test_every_kind_has_a_contract(self, tmp_path):
        kinds = {i["kind"] for i in chaos_items(SMALL, str(tmp_path))}
        assert kinds <= set(EXPECTED_OUTCOME)


class TestRunChaos:
    def test_accounting_invariant_holds(self, tmp_path):
        report = run_chaos(
            SMALL,
            journal_path=str(tmp_path / "chaos.jsonl"),
            scratch_dir=str(tmp_path / "scratch"),
        )
        assert report.ok, report.render()
        assert report.n_items == SMALL.n_items
        assert report.delivered == SMALL.n_echo + SMALL.n_flaky
        assert report.quarantined == (
            SMALL.n_fail + SMALL.n_crash + SMALL.n_hang + SMALL.n_unpicklable
        )
        assert not report.unaccounted
        assert report.replay_matches

    def test_in_process_execution_refused(self):
        with pytest.raises(ValueError, match="workers >= 2"):
            run_chaos(ChaosConfig(workers=1))


class TestKillResume:
    def test_grid_is_deterministic(self):
        assert kill_resume_grid(0) == kill_resume_grid(0)
        assert kill_resume_grid(0) != kill_resume_grid(1)

    def test_sigkilled_sweep_resumes_to_golden_fingerprint(self, tmp_path):
        report = run_kill_resume(
            workers=2,
            seed=0,
            journal_path=str(tmp_path / "sweep.jsonl"),
            kill_after_items=1,
        )
        assert report["ok"], report
        assert (
            report["resumed_fingerprint"] == report["golden_fingerprint"]
        )


class TestKillResumeTraining:
    def test_setup_is_deterministic(self):
        _env_a, mech_a = kill_resume_training_setup(0)
        _env_b, mech_b = kill_resume_training_setup(0)
        import numpy as np

        np.testing.assert_array_equal(
            mech_a.exterior.policy.flat_parameters(),
            mech_b.exterior.policy.flat_parameters(),
        )

    def test_drill_checkpoints_every_round(self):
        assert TRAIN_DRILL["sync_every"] == TRAIN_DRILL["checkpoint_every"]

    @pytest.mark.train
    def test_sigkilled_training_resumes_to_golden(self, tmp_path):
        report = run_kill_resume_training(
            workers=2,
            seed=0,
            scratch_dir=str(tmp_path),
            kill_after_rounds=1,
        )
        assert report["ok"], report
        assert report["resumed_fingerprint"] == report["golden_fingerprint"]
        assert (
            report["resumed_checkpoint_digest"]
            == report["golden_checkpoint_digest"]
        )
