"""Journaled sweeps: resume identity, drain semantics, manifest refusal."""

from __future__ import annotations

import signal

import pytest

from repro.parallel.engine import run_sweep
from repro.parallel.pool import PoolConfig
from repro.resilience.journal import RunJournal, read_journal
from repro.resilience.signals import ShutdownGuard
from repro.resilience.sweep import (
    KIND_HEADER,
    KIND_ITEM_OK,
    KIND_ITEM_QUARANTINED,
    KIND_MANIFEST,
    manifest_digest,
    sweep_progress,
)

pytestmark = pytest.mark.resilience

FAST = PoolConfig(workers=1, max_retries=1, backoff_base=0.001)


def echo_items(n=5):
    return [{"kind": "echo", "value": i} for i in range(n)]


class TestFingerprintIdentity:
    def test_journaled_run_matches_plain_run(self, tmp_path):
        items = echo_items()
        golden = run_sweep(items, workers=1)
        live = run_sweep(items, workers=1, journal=tmp_path / "j.jsonl")
        assert live.fingerprint() == golden.fingerprint()
        assert live.integrity() == golden.integrity()

    def test_full_replay_executes_nothing_and_matches(self, tmp_path):
        items = echo_items()
        journal = tmp_path / "j.jsonl"
        first = run_sweep(items, workers=1, journal=journal)
        records_after_first = len(read_journal(journal).records)
        second = run_sweep(items, workers=1, journal=journal)
        assert second.fingerprint() == first.fingerprint()
        assert second.integrity() == first.integrity()
        # The replay appends only a fresh manifest record, never item records.
        replay = read_journal(journal)
        assert len(replay.of_kind(KIND_ITEM_OK)) == len(items)
        assert len(replay.records) == records_after_first + 1

    def test_partial_journal_resumes_remainder_only(self, tmp_path):
        items = echo_items(6)
        journal_path = tmp_path / "j.jsonl"
        golden = run_sweep(items, workers=1)
        run_sweep(items, workers=1, journal=journal_path)
        # Amputate the journal after the header + 2 item records,
        # simulating a crash mid-sweep (tail truncation is exactly what a
        # torn write leaves after cleanup).
        lines = journal_path.read_text().splitlines()
        journal_path.write_text("\n".join(lines[:3]) + "\n")
        resumed = run_sweep(items, workers=1, journal=journal_path)
        assert resumed.fingerprint() == golden.fingerprint()
        replay = read_journal(journal_path)
        # 2 replayed + 4 executed: every item journaled exactly once.
        assert len(replay.of_kind(KIND_ITEM_OK)) == len(items)


class TestQuarantineReplay:
    def test_quarantine_round_trips_through_journal(self, tmp_path):
        items = echo_items(3) + [{"kind": "fail", "message": "injected"}]
        journal = tmp_path / "j.jsonl"
        first = run_sweep(items, pool_config=FAST, journal=journal)
        assert [f.index for f in first.quarantined] == [3]
        replayed = run_sweep(items, pool_config=FAST, journal=journal)
        assert [f.index for f in replayed.quarantined] == [3]
        failure = replayed.quarantined[0]
        assert failure.attempts == first.quarantined[0].attempts
        assert failure.errors == first.quarantined[0].errors
        assert any("injected" in e for e in failure.errors)
        assert replayed.integrity() == first.integrity()
        assert len(read_journal(journal).of_kind(KIND_ITEM_QUARANTINED)) == 1


class TestManifestRefusal:
    def test_different_item_list_refused(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        run_sweep(echo_items(4), workers=1, journal=journal)
        with pytest.raises(ValueError, match="different item list"):
            run_sweep(echo_items(5), workers=1, journal=journal)

    def test_manifest_digest_is_order_sensitive(self):
        items = echo_items(3)
        assert manifest_digest(items) != manifest_digest(items[::-1])

    def test_manifest_digest_handles_bytes_payloads(self):
        a = [{"kind": "blob", "payload": b"\x00\x01"}]
        b = [{"kind": "blob", "payload": b"\x00\x02"}]
        assert manifest_digest(a) != manifest_digest(b)
        assert manifest_digest(a) == manifest_digest(a)


class TestIntegrityDigest:
    """Satellite: the failure manifest is part of the integrity digest."""

    def test_degraded_run_cannot_impersonate_clean_one(self, tmp_path):
        clean_items = echo_items(3)
        golden = run_sweep(clean_items, workers=1)
        degraded = run_sweep(
            clean_items + [{"kind": "fail", "message": "x"}],
            pool_config=FAST,
        )
        assert golden.integrity() != degraded.integrity()

    def test_integrity_excludes_error_strings(self, tmp_path):
        # Two runs quarantining the same index with different error text
        # (different pids in real crashes) must agree on integrity.
        items = echo_items(2) + [{"kind": "fail", "message": "alpha"}]
        other = echo_items(2) + [{"kind": "fail", "message": "beta"}]
        first = run_sweep(items, pool_config=FAST)
        second = run_sweep(other, pool_config=FAST)
        assert first.quarantined[0].errors != second.quarantined[0].errors
        assert first.integrity() == second.integrity()

    def test_interrupted_flag_changes_integrity(self):
        complete = run_sweep(echo_items(2), workers=1)
        fingerprint_only = complete.fingerprint()
        complete.interrupted = True
        assert complete.fingerprint() == fingerprint_only
        interrupted_digest = complete.integrity()
        complete.interrupted = False
        assert complete.integrity() != interrupted_digest


class TestGracefulDrain:
    def test_draining_guard_stops_before_dispatch(self, tmp_path):
        guard = ShutdownGuard()
        guard.request(signal.SIGTERM)
        journal = tmp_path / "j.jsonl"
        result = run_sweep(
            echo_items(4), workers=1, journal=journal, guard=guard
        )
        assert result.interrupted
        assert not result.ok
        with pytest.raises(RuntimeError, match="interrupted"):
            result.raise_on_quarantine()
        progress = sweep_progress(journal)
        assert progress["complete"] is False
        assert progress["completed"] == 0

    def test_drained_sweep_resumes_to_golden_fingerprint(self, tmp_path):
        items = echo_items(4)
        golden = run_sweep(items, workers=1)
        guard = ShutdownGuard()
        guard.request(signal.SIGTERM)
        journal = tmp_path / "j.jsonl"
        run_sweep(items, workers=1, journal=journal, guard=guard)
        resumed = run_sweep(items, workers=1, journal=journal)
        assert not resumed.interrupted
        assert resumed.fingerprint() == golden.fingerprint()
        assert sweep_progress(journal)["complete"] is True


class TestJournalAnatomy:
    def test_record_kinds_in_expected_order(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        run_sweep(echo_items(2), workers=1, journal=journal)
        kinds = [r.kind for r in read_journal(journal).records]
        assert kinds[0] == KIND_HEADER
        assert kinds[-1] == KIND_MANIFEST
        assert kinds[1:-1] == [KIND_ITEM_OK, KIND_ITEM_OK]

    def test_open_journal_instance_accepted(self, tmp_path):
        items = echo_items(3)
        golden = run_sweep(items, workers=1)
        with RunJournal(tmp_path / "j.jsonl") as journal:
            live = run_sweep(items, workers=1, journal=journal)
        assert live.fingerprint() == golden.fingerprint()
