"""Smoke test for the rollout benchmark harness (`python -m repro.bench`).

Marked ``bench`` and excluded from the default run (see pyproject
``addopts``); exercised via ``make bench-smoke`` or
``pytest -m bench tests/``.  Uses a deliberately tiny workload — it checks
the harness end to end, not the speedup numbers.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.bench import run_rollout_benchmark, write_report

pytestmark = pytest.mark.bench


def test_report_structure(tmp_path):
    report = run_rollout_benchmark(
        [1, 2], episodes_per_env=1, warmup_episodes=0, n_nodes=4, budget=20.0
    )
    assert report["benchmark"] == "rollout"
    assert [r["num_envs"] for r in report["results"]] == [1, 2]
    for entry in report["results"]:
        assert entry["steps"] > 0
        assert entry["steps_per_sec"] > 0
        assert entry["episodes"] == entry["num_envs"]  # episodes_per_env=1
    assert report["speedup_vs_sequential"]["1"] == pytest.approx(1.0)
    assert report["speedup_vs_sequential"]["2"] > 0

    out = tmp_path / "bench.json"
    write_report(report, str(out))
    assert json.loads(out.read_text()) == report


def test_cli_entry_point(tmp_path):
    out = tmp_path / "cli_bench.json"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.bench",
            "rollout",
            "--num-envs",
            "1,2",
            "--episodes-per-env",
            "1",
            "--warmup-episodes",
            "0",
            "--n-nodes",
            "4",
            "--budget",
            "20.0",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        check=True,
        env={
            **os.environ,
            # Resolve the same `repro` the test imported, however the
            # suite was launched (installed or PYTHONPATH=src).
            "PYTHONPATH": os.pathsep.join(
                filter(
                    None,
                    [
                        os.path.dirname(os.path.dirname(repro.__file__)),
                        os.environ.get("PYTHONPATH", ""),
                    ],
                )
            ),
        },
    )
    assert out.exists()
    report = json.loads(out.read_text())
    assert report["benchmark"] == "rollout"
    assert "steps/s" in proc.stdout


def test_rollout_smoke_fingerprints_identical():
    from repro.bench import run_rollout_smoke

    report = run_rollout_smoke(num_envs=2, episodes=2, n_nodes=4, budget=20.0)
    assert report["benchmark"] == "rollout_smoke"
    assert set(report["fingerprints"]) == {
        "fast_path",
        "fast_path_rerun",
        "per_replica_respond",
        "autograd_forward",
    }
    assert report["fingerprints_identical"], report["fingerprints"]


def test_rollout_smoke_cli_gate(tmp_path):
    out = tmp_path / "rollout_smoke.json"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.bench",
            "rollout",
            "--smoke",
            "--num-envs",
            "1,2",
            "--n-nodes",
            "4",
            "--budget",
            "20.0",
            "--out",
            str(out),
        ],
        capture_output=True,
        text=True,
        cwd=os.path.dirname(os.path.dirname(repro.__file__)),
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(out.read_text())
    assert report["fingerprints_identical"]
