"""Guard: disabled-mode observability hooks cost no allocation.

The promise in docs/observability.md is that instrumented hot paths are
zero-cost while observability is off: every facade lookup returns a
module-level singleton and the no-op span allocates nothing.  This suite
pins that down so a future change (e.g. building a fresh no-op object per
call, or a span per node in the fused response loop) fails loudly.

Marked `obs`, not `bench` — these are cheap correctness guards that run
with the default suite.
"""

from __future__ import annotations

import tracemalloc

import pytest

from repro import obs
from repro.core.builder import build_environment

pytestmark = pytest.mark.obs


def test_disabled_lookups_return_shared_singletons():
    assert not obs.enabled()
    assert obs.counter("a") is obs.counter("b")
    assert obs.gauge("a") is obs.gauge("b")
    assert obs.ewma("a") is obs.ewma("b")
    assert obs.histogram("a") is obs.histogram("b")
    assert obs.span("a") is obs.span("b")
    assert obs.span("a") is obs.NOOP_SPAN


def test_disabled_span_allocates_nothing():
    assert not obs.enabled()
    span = obs.span  # facade lookup outside the measured window

    # Warm up (interned strings, method caches).
    for _ in range(10):
        with span("warmup"):
            pass

    tracemalloc.start()
    for _ in range(1000):
        with span("hot"):
            pass
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    # A no-op context manager round-trip must not allocate per iteration;
    # allow a small constant slack for tracemalloc's own bookkeeping.
    assert peak < 4096, f"disabled span allocated {peak} bytes over 1000 iters"


def test_disabled_response_loop_adds_no_measurable_allocation():
    """The fused node-response loop with obs off allocates no obs objects."""
    assert not obs.enabled()
    from repro.baselines import FixedPriceMechanism
    from repro.core.mechanism import Observation

    env = build_environment(n_nodes=6, budget=50.0, seed=3).env
    state, _ = env.reset(seed=0)
    mech = FixedPriceMechanism(env, markup=2.0)
    mech.begin_episode(Observation(state, env.ledger.remaining, env.round_index))
    prices = mech.propose_prices(
        Observation(state, env.ledger.remaining, env.round_index)
    )

    env.step(prices)  # warm-up step: lazy caches, interning

    tracemalloc.start()
    snap_before = tracemalloc.take_snapshot()
    env.step(prices)
    snap_after = tracemalloc.take_snapshot()
    tracemalloc.stop()

    import repro.obs.registry as registry_mod
    import repro.obs.tracing as tracing_mod

    obs_files = {registry_mod.__file__, tracing_mod.__file__, obs.__file__}
    obs_bytes = sum(
        stat.size_diff
        for stat in snap_after.compare_to(snap_before, "filename")
        if stat.traceback[0].filename in obs_files
    )
    assert obs_bytes <= 0, (
        f"obs modules allocated {obs_bytes} bytes during a disabled-mode step"
    )
